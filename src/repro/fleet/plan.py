"""Deterministic shard planning: a cycle or sweep as a partitionable plan.

The paper runs its all-pairs matrix on one testbed; Section 9 names
parallel execution as the scaling path.  ``repro.fleet`` takes the step
the ROADMAP calls "sharded multi-host sweep": because every trial is a
deterministic seeded simulation addressed by a content hash
(:func:`~repro.core.cache.trial_cache_key`), an entire watchdog cycle can
be *planned* - every :class:`~repro.core.runner.TrialSpec` and its cache
key enumerated up front - then partitioned across hosts, executed into
disjoint cache directories, merged, and re-assembled into the exact
report a single host would have produced.

Planning is deterministic and the partition is *stable*: a spec's shard
is a pure function of its cache key (hash modulo shard count), so
re-planning - even after adding services or sweep points - never moves
previously-planned work between shards.  Plans and per-shard manifests
are schema-versioned JSON, forward-compatible in the same
ignore-unknown-keys style as ``ExperimentResult.from_json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import units
from ..config import ExperimentConfig, NetworkConfig
from ..core.cache import CACHE_SCHEMA_VERSION, trial_cache_key
from ..core.runner import TrialSpec
from ..core.scheduler import fixed_trial_scheduler
from ..core.sweep import expand_sweep_networks, pair_sweep_trials

#: Bump when the plan/manifest JSON layout changes incompatibly.
#: v2 adds adaptive-round identity (``cycle`` block: parent cycle id +
#: round index) and retry attempts on shard manifests.
MANIFEST_SCHEMA_VERSION = 2

#: Plan/manifest schema versions this library still reads.  v1 files
#: (pre-adaptive, no cycle block) load unchanged: their plan ids were
#: computed under schema 1, and :attr:`FleetPlan.plan_id` recomputes
#: with the file's own schema so the identity check still holds.
SUPPORTED_MANIFEST_SCHEMAS = (1, 2)


class FleetError(RuntimeError):
    """A fleet invariant was violated (skew, gaps, duplicates, schema)."""


def _canonical(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _dataclass_from_json(cls, payload: Dict):
    """Rebuild a config dataclass, ignoring unknown keys (fwd compat)."""
    known = {f.name for f in dataclasses.fields(cls)}
    return cls(**{k: v for k, v in payload.items() if k in known})


def network_fingerprint(network: NetworkConfig) -> str:
    """Stable digest of one network setting (manifest cross-checks)."""
    return hashlib.sha256(
        _canonical(dataclasses.asdict(network)).encode("utf-8")
    ).hexdigest()


def config_fingerprint(config: ExperimentConfig) -> str:
    """Stable digest of one experiment protocol (manifest cross-checks)."""
    return hashlib.sha256(
        _canonical(dataclasses.asdict(config)).encode("utf-8")
    ).hexdigest()


def shard_for_key(cache_key: str, num_shards: int) -> int:
    """The shard owning one cache key: stable hash partitioning.

    Uses a prefix of the key itself (already a uniform SHA-256 digest),
    so the assignment depends on nothing but the trial's content and the
    shard count - re-planning with more services or sweep points never
    reshuffles existing keys between shards.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    return int(cache_key[:16], 16) % num_shards


def spec_to_json(spec: TrialSpec, cache_key: str) -> Dict:
    """Serialise one planned trial (spec + expected cache key)."""
    return {
        "service_ids": list(spec.service_ids),
        "network": dataclasses.asdict(spec.network),
        "config": dataclasses.asdict(spec.config),
        "seed": spec.seed,
        "cache_key": cache_key,
    }


def spec_from_json(payload: Dict) -> Tuple[TrialSpec, str]:
    """Rebuild ``(TrialSpec, expected cache key)`` from manifest JSON."""
    spec = TrialSpec(
        service_ids=tuple(payload["service_ids"]),
        network=_dataclass_from_json(NetworkConfig, payload["network"]),
        config=_dataclass_from_json(ExperimentConfig, payload["config"]),
        seed=payload["seed"],
    )
    return spec, payload["cache_key"]


@dataclass(frozen=True)
class PlannedTrial:
    """One trial in a plan: the spec, its cache key, and its shard."""

    spec: TrialSpec
    cache_key: str
    shard: int


class FleetPlan:
    """A fully-enumerated, shardable trial matrix plus assembly recipe.

    ``kind`` is ``"cycle"`` (all-pairs watchdog cycle) or ``"sweep"``
    (pair parameter sweep); ``params`` holds whatever the assembler needs
    to rebuild the published artifact (service ids and networks for a
    cycle; sweep kind/values/pair for a sweep).  ``trials`` is the full
    ordered trial list - plan order is single-host execution order, which
    is what makes assembled reports bit-identical to unsharded runs.

    A *round-scoped* plan (one round of an adaptive cycle) additionally
    carries ``cycle_id`` (identity of the parent adaptive cycle) and
    ``round_index``; both fold into :attr:`plan_id`, so two rounds of the
    same cycle - even if they happen to plan identical trial sets - have
    distinct identities and receipts cannot cross rounds.
    """

    def __init__(
        self,
        kind: str,
        num_shards: int,
        trials: Sequence[PlannedTrial],
        params: Dict,
        cache_schema: int = CACHE_SCHEMA_VERSION,
        cycle_id: Optional[str] = None,
        round_index: Optional[int] = None,
        schema: int = MANIFEST_SCHEMA_VERSION,
    ) -> None:
        if kind not in ("cycle", "sweep"):
            raise ValueError(f"unknown plan kind {kind!r}")
        if (cycle_id is None) != (round_index is None):
            raise ValueError(
                "round-scoped plans need both cycle_id and round_index"
            )
        self.kind = kind
        self.num_shards = num_shards
        self.trials = list(trials)
        self.params = dict(params)
        self.cache_schema = cache_schema
        self.cycle_id = cycle_id
        self.round_index = round_index
        self.schema = schema

    # -- identity ------------------------------------------------------

    @property
    def plan_id(self) -> str:
        """Content identity of the planned work.

        Covers the sorted cache-key set (which itself covers every trial
        input) and the schema versions - *not* the shard count, so the
        same matrix planned at different widths shares one identity.
        Round-scoped plans also fold in the parent cycle id and round
        index, so each round of an adaptive cycle is its own plan and
        shard receipts cannot leak between rounds.
        """
        payload = {
            "manifest_schema": self.schema,
            "cache_schema": self.cache_schema,
            "keys": sorted(t.cache_key for t in self.trials),
        }
        if self.cycle_id is not None:
            payload["cycle"] = {
                "id": self.cycle_id,
                "round": self.round_index,
            }
        return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()

    def expected_keys(self) -> List[str]:
        """Every cache key the plan expects, in plan order."""
        return [t.cache_key for t in self.trials]

    def shard_trials(self, shard_index: int) -> List[PlannedTrial]:
        """The trials owned by one shard, in plan order."""
        if not 0 <= shard_index < self.num_shards:
            raise ValueError(
                f"shard {shard_index} out of range for "
                f"{self.num_shards} shards"
            )
        return [t for t in self.trials if t.shard == shard_index]

    # -- serialisation -------------------------------------------------

    def to_json(self) -> Dict:
        """Schema-versioned plan payload, round-trippable via from_json."""
        payload = {
            "schema": self.schema,
            "kind": "fleet-plan",
            "plan_kind": self.kind,
            "plan_id": self.plan_id,
            "cache_schema": self.cache_schema,
            "num_shards": self.num_shards,
            "params": self.params,
            "trials": [
                {**spec_to_json(t.spec, t.cache_key), "shard": t.shard}
                for t in self.trials
            ],
        }
        if self.cycle_id is not None:
            payload["cycle"] = {
                "id": self.cycle_id,
                "round": self.round_index,
            }
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "FleetPlan":
        """Load a plan, ignoring unknown keys; reject schema skew.

        Accepts every :data:`SUPPORTED_MANIFEST_SCHEMAS` version - a v1
        plan (pre-adaptive) loads with no cycle identity and keeps its
        v1-computed plan id valid.
        """
        schema = payload.get("schema")
        if schema not in SUPPORTED_MANIFEST_SCHEMAS:
            raise FleetError(
                f"plan schema {schema!r} not in supported "
                f"{SUPPORTED_MANIFEST_SCHEMAS}"
            )
        trials = []
        for entry in payload["trials"]:
            spec, key = spec_from_json(entry)
            trials.append(PlannedTrial(spec, key, entry["shard"]))
        cycle = payload.get("cycle") or {}
        plan = cls(
            kind=payload["plan_kind"],
            num_shards=payload["num_shards"],
            trials=trials,
            params=payload.get("params", {}),
            cache_schema=payload.get("cache_schema", CACHE_SCHEMA_VERSION),
            cycle_id=cycle.get("id"),
            round_index=cycle.get("round"),
            schema=schema,
        )
        stated = payload.get("plan_id")
        if stated is not None and stated != plan.plan_id:
            raise FleetError(
                "plan_id mismatch: file says "
                f"{stated[:12]}..., recomputed {plan.plan_id[:12]}... "
                "(edited plan or library version skew)"
            )
        return plan

    def manifest_for(self, shard_index: int, attempt: int = 0) -> Dict:
        """The standalone JSON manifest one shard worker executes.

        ``attempt`` stamps retries: a re-dispatched manifest for a shard
        whose receipt never arrived carries attempt 1, 2, ... and the
        merge's supersede rule prefers the highest-attempt receipt.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        owned = self.shard_trials(shard_index)
        manifest = {
            "schema": self.schema,
            "kind": "shard-manifest",
            "plan_id": self.plan_id,
            "plan_kind": self.kind,
            "cache_schema": self.cache_schema,
            "shard_index": shard_index,
            "num_shards": self.num_shards,
            "attempt": attempt,
            "network_fingerprints": sorted(
                {network_fingerprint(t.spec.network) for t in owned}
            ),
            "config_fingerprints": sorted(
                {config_fingerprint(t.spec.config) for t in owned}
            ),
            "trials": [spec_to_json(t.spec, t.cache_key) for t in owned],
        }
        # The early-termination model artifact travels with every shard
        # manifest so workers arm identical monitors (plan identity is
        # untouched: params are not part of plan_id, and two plans over
        # the same keys merge cleanly either way because full-length
        # results supersede truncated ones).
        if "earlystop" in self.params:
            manifest["earlystop"] = self.params["earlystop"]
        if self.cycle_id is not None:
            manifest["cycle"] = {
                "id": self.cycle_id,
                "round": self.round_index,
            }
        return manifest

    def write(self, out_dir: Union[str, Path]) -> List[Path]:
        """Write ``plan.json`` plus one ``shard-<i>.json`` per shard.

        Returns the written paths, plan file first.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = [out / "plan.json"]
        paths[0].write_text(json.dumps(self.to_json(), indent=1))
        for shard in range(self.num_shards):
            path = out / f"shard-{shard}.json"
            path.write_text(json.dumps(self.manifest_for(shard), indent=1))
            paths.append(path)
        return paths


def load_plan(path: Union[str, Path]) -> FleetPlan:
    """Read a ``plan.json`` from disk."""
    return FleetPlan.from_json(json.loads(Path(path).read_text()))


def load_manifest(path: Union[str, Path]) -> Dict:
    """Read a shard manifest from disk, validating its schema.

    v1 manifests (no ``attempt``/``cycle`` fields) load unchanged;
    consumers treat a missing attempt as 0.
    """
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema not in SUPPORTED_MANIFEST_SCHEMAS:
        raise FleetError(
            f"manifest schema {schema!r} not in supported "
            f"{SUPPORTED_MANIFEST_SCHEMAS}"
        )
    if payload.get("kind") != "shard-manifest":
        raise FleetError(
            f"not a shard manifest: kind={payload.get('kind')!r}"
        )
    return payload


def _planned(specs: Sequence[TrialSpec], num_shards: int) -> List[PlannedTrial]:
    planned = []
    for spec in specs:
        key = trial_cache_key(spec)
        planned.append(PlannedTrial(spec, key, shard_for_key(key, num_shards)))
    return planned


def plan_cycle(
    service_ids: Sequence[str],
    networks: Sequence[NetworkConfig],
    config: ExperimentConfig,
    trials_per_pair: int,
    num_shards: int,
    base_seed: int = 0,
    include_self_pairs: bool = True,
    earlystop: Optional[Dict] = None,
) -> FleetPlan:
    """Plan one all-pairs watchdog cycle as a shardable trial matrix.

    Enumerates through the same :func:`fixed_trial_scheduler` +
    ``next_batch`` path a fixed-policy single-host cycle executes, so the
    plan's specs, seeds, and round-robin order are identical to what
    ``Prudentia.run_cycle`` (cycle 0) would run - which is what lets the
    assembler rebuild a bit-identical report.

    ``earlystop`` (an :class:`~repro.core.earlystop.EarlyStopConfig`
    encoded via ``to_json``) rides in the plan params and every shard
    manifest, so workers arm identical early-termination monitors.
    """
    if trials_per_pair < 1:
        raise ValueError("need at least one trial per pair")
    specs: List[TrialSpec] = []
    for network in networks:
        scheduler = fixed_trial_scheduler(
            list(service_ids),
            trials_per_pair,
            include_self_pairs=include_self_pairs,
            base_seed=base_seed,
        )
        specs.extend(scheduler.next_batch(network, config))
    params = {
        "service_ids": sorted(service_ids),
        "networks": [dataclasses.asdict(n) for n in networks],
        "config": dataclasses.asdict(config),
        "trials_per_pair": trials_per_pair,
        "base_seed": base_seed,
        "include_self_pairs": include_self_pairs,
    }
    if earlystop is not None:
        params["earlystop"] = earlystop
    return FleetPlan("cycle", num_shards, _planned(specs, num_shards), params)


def plan_sweep(
    sweep_kind: str,
    service_id_a: str,
    service_id_b: str,
    values: Sequence[float],
    config: ExperimentConfig,
    num_shards: int,
    base_network: Optional[NetworkConfig] = None,
    trials: int = 3,
    base_seed: int = 1,
) -> FleetPlan:
    """Plan a pair parameter sweep as a shardable trial matrix.

    Sweep points expand through
    :func:`~repro.core.sweep.expand_sweep_networks`, the same expansion
    the in-process sweep runners use, so a merged fleet sweep aggregates
    to exactly the local ``bandwidth_sweep``/``buffer_sweep``/... curves.
    """
    base = base_network or NetworkConfig(bandwidth_bps=units.mbps(8))
    networks = expand_sweep_networks(sweep_kind, values, base)
    specs = pair_sweep_trials(
        service_id_a, service_id_b, networks, config, trials, base_seed
    )
    params = {
        "sweep_kind": sweep_kind,
        "service_id_a": service_id_a,
        "service_id_b": service_id_b,
        "values": list(values),
        "base_network": dataclasses.asdict(base),
        "config": dataclasses.asdict(config),
        "trials": trials,
        "base_seed": base_seed,
    }
    return FleetPlan("sweep", num_shards, _planned(specs, num_shards), params)
