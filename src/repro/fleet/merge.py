"""Cache merge: union shard caches back into one, losslessly and loudly.

The merge is where multi-host execution either becomes exactly a
single-host run or silently is not - so it verifies everything it can:

- every shard directory carries a completion receipt for *this* plan
  (plan-id match) at *this* cache schema version (skew rejected);
- entries present in several shards must be byte-identical (the
  simulator is deterministic - divergent duplicates mean version skew or
  a corrupted transfer, never legitimate data).  The one sanctioned
  exception is early termination (:mod:`repro.core.earlystop`): a
  truncated trial and its full-length sibling share a cache key by
  design, and the merge resolves that pair with the cache's own
  supersede rule - full-length wins, longer horizon breaks ties;
- the union is diffed against the plan's expected key set: gaps
  (planned-but-missing trials) fail the merge unless explicitly allowed,
  and extras (unplanned entries, e.g. from a pre-warmed shared cache)
  are counted but tolerated.

Shard receipts' :class:`~repro.core.runner.RunnerStats` are summed, so
the merged cache knows how much total simulation the fleet performed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..core.cache import CACHE_SCHEMA_VERSION, _completeness, is_cache_key
from ..core.runner import RunnerStats
from ..obs.metrics import merge_snapshots
from .plan import FleetError, FleetPlan
from .worker import ShardReceipt


@dataclass
class MergeReport:
    """What the merge did and what it found.

    ``stats`` sums every receipt's :class:`RunnerStats` (retries
    included - it measures total fleet effort); ``per_shard_stats``
    keeps the per-shard breakdown keyed by shard index, with duplicate
    receipts for one shard resolved by the supersede rule (highest
    attempt wins - see :func:`merge_shards`; ``superseded_receipts``
    counts the losers).  ``metrics`` unions the receipts'
    :mod:`repro.obs` snapshots, so shard-level telemetry survives the
    merge instead of being dropped.  ``superseded_entries`` counts
    divergent duplicate *entries* resolved by the earlystop completeness
    rule (full-length supersedes truncated).
    """

    shards: int = 0
    entries_merged: int = 0
    duplicates: int = 0
    gaps: List[str] = field(default_factory=list)
    extras: int = 0
    superseded_receipts: int = 0
    superseded_entries: int = 0
    stats: RunnerStats = field(default_factory=RunnerStats)
    per_shard_stats: Dict[int, RunnerStats] = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)

    def to_json(self) -> Dict:
        """Machine-readable merge summary (stats nested as JSON)."""
        return {
            "shards": self.shards,
            "entries_merged": self.entries_merged,
            "duplicates": self.duplicates,
            "gaps": list(self.gaps),
            "extras": self.extras,
            "superseded_receipts": self.superseded_receipts,
            "superseded_entries": self.superseded_entries,
            "stats": self.stats.to_json(),
            "per_shard_stats": {
                str(index): stats.to_json()
                for index, stats in sorted(self.per_shard_stats.items())
            },
            "metrics": self.metrics,
        }


def _shard_entries(shard_dir: Path) -> List[Path]:
    return sorted(
        path
        for path in shard_dir.glob("*.json")
        if is_cache_key(path.stem)
    )


def _resolve_divergent(challenger: bytes, incumbent: bytes) -> Optional[str]:
    """Adjudicate a byte-divergent duplicate entry, or refuse to.

    Early termination is the one way two runs of a deterministic trial
    legitimately produce different bytes under one cache key: a shard
    that ran with the monitor armed wrote a truncated result, another
    (or an audit trial) wrote the full-length one.  Both payloads must
    parse and differ *in completeness* (full beats truncated, longer
    truncated horizon beats shorter - :func:`repro.core.cache._completeness`);
    anything else is real divergence and stays a hard error.  Returns
    ``"replace"`` / ``"keep"``, or ``None`` when the conflict is not an
    earlystop supersede.
    """
    try:
        challenger_payload = json.loads(challenger)
        incumbent_payload = json.loads(incumbent)
    except ValueError:
        return None
    challenger_rank = _completeness(challenger_payload)
    incumbent_rank = _completeness(incumbent_payload)
    if challenger_rank == incumbent_rank:
        return None
    if not (
        challenger_payload.get("earlystop") or incumbent_payload.get("earlystop")
    ):
        # Neither side was early-terminated: a completeness gap without
        # an earlystop block means genuinely different trials collided.
        return None
    return "replace" if challenger_rank > incumbent_rank else "keep"


def _supersedes(challenger: ShardReceipt, incumbent: ShardReceipt) -> bool:
    """Does ``challenger`` win the shard over ``incumbent``?

    Retry semantics: a later attempt supersedes an earlier one, then a
    more complete receipt wins.  A full tie falls back to comparing the
    receipts' canonical JSON, so the winner is a deterministic function
    of the receipt *contents* - independent of the order shard
    directories were listed in.
    """
    challenger_rank = (challenger.attempt, len(challenger.completed_keys))
    incumbent_rank = (incumbent.attempt, len(incumbent.completed_keys))
    if challenger_rank != incumbent_rank:
        return challenger_rank > incumbent_rank
    def canon(receipt: ShardReceipt) -> str:
        return json.dumps(
            receipt.to_json(), sort_keys=True, separators=(",", ":")
        )

    return canon(challenger) < canon(incumbent)


def merge_shards(
    plan: FleetPlan,
    shard_dirs: Sequence[Union[str, Path]],
    dest_dir: Union[str, Path],
    allow_gaps: bool = False,
    require_receipts: bool = True,
) -> MergeReport:
    """Union shard cache directories into ``dest_dir`` for this plan.

    Raises :class:`FleetError` on receipt/plan/schema mismatch, on
    divergent duplicate entries (except truncated-vs-full earlystop
    pairs, which resolve to the more complete payload), and (unless
    ``allow_gaps``) when the union does not cover every key the plan
    expects.  ``dest_dir`` may
    be pre-populated (e.g. merging additional shards later); existing
    byte-identical entries count as duplicates.
    """
    if plan.cache_schema != CACHE_SCHEMA_VERSION:
        raise FleetError(
            f"plan cache schema {plan.cache_schema} != this library's "
            f"{CACHE_SCHEMA_VERSION} - the plan is stale; re-plan before "
            "merging"
        )
    dest = Path(dest_dir)
    dest.mkdir(parents=True, exist_ok=True)
    expected = set(plan.expected_keys())
    report = MergeReport(shards=len(shard_dirs))
    shard_metrics: List[Dict] = []
    winners: Dict[int, ShardReceipt] = {}
    for shard_dir in shard_dirs:
        shard = Path(shard_dir)
        if not shard.is_dir():
            raise FleetError(f"shard cache {shard} is not a directory")
        if require_receipts:
            receipt = ShardReceipt.load(shard)
            if receipt.plan_id != plan.plan_id:
                raise FleetError(
                    f"receipt in {shard} belongs to plan "
                    f"{receipt.plan_id[:12]}..., not this plan "
                    f"{plan.plan_id[:12]}..."
                )
            if receipt.cache_schema != plan.cache_schema:
                raise FleetError(
                    f"receipt in {shard} was produced at cache schema "
                    f"{receipt.cache_schema}, plan expects "
                    f"{plan.cache_schema} - rejected (results would not "
                    "be comparable)"
                )
            report.stats = report.stats.merged_with(receipt.stats)
            incumbent = winners.get(receipt.shard_index)
            if incumbent is None:
                winners[receipt.shard_index] = receipt
            else:
                # Duplicate receipts for one shard (retries): the
                # supersede rule picks a deterministic winner for the
                # per-shard breakdown; total stats keep both (they both
                # really ran).
                report.superseded_receipts += 1
                if _supersedes(receipt, incumbent):
                    winners[receipt.shard_index] = receipt
            if receipt.metrics is not None:
                shard_metrics.append(receipt.metrics)
        for entry in _shard_entries(shard):
            data = entry.read_bytes()
            target = dest / entry.name
            if target.exists():
                existing = target.read_bytes()
                if existing != data:
                    verdict = _resolve_divergent(data, existing)
                    if verdict is None:
                        raise FleetError(
                            f"divergent duplicate for key "
                            f"{entry.stem[:12]}... ({entry} vs {target}) - "
                            "deterministic trials cannot legitimately "
                            "differ; suspect version skew or corruption"
                        )
                    if verdict == "replace":
                        target.write_bytes(data)
                    report.superseded_entries += 1
                    continue
                report.duplicates += 1
                continue
            target.write_bytes(data)
            report.entries_merged += 1
            if entry.stem not in expected:
                report.extras += 1
    report.per_shard_stats = {
        index: receipt.stats for index, receipt in winners.items()
    }
    if shard_metrics:
        report.metrics = merge_snapshots(shard_metrics)
    merged_keys = {path.stem for path in _shard_entries(dest)}
    report.gaps = sorted(expected - merged_keys)
    if report.gaps and not allow_gaps:
        preview = ", ".join(k[:12] + "..." for k in report.gaps[:5])
        raise FleetError(
            f"merge leaves {len(report.gaps)} of {len(expected)} planned "
            f"trials uncovered ({preview}) - a shard is missing, "
            "incomplete, or was evicted below its own output size"
        )
    return report
