"""Report assembly: rebuild published artifacts from a merged cache.

The last fleet stage proves the round trip: replaying the plan's trial
list through an :class:`~repro.core.runner.InlineBackend` wired to the
merged cache rebuilds the :class:`~repro.core.results.ResultStore` in
single-host execution order *without simulating anything* - every trial
must be a cache hit, and the assembler refuses to silently re-simulate
if one is not.  The resulting :class:`~repro.core.report.FairnessReport`
(or sweep curve) is therefore bit-identical to what one host running the
whole cycle would have published, and its attached
:class:`~repro.core.runner.RunnerStats` proves it: ``trials_run == 0``,
``cache_hits == len(plan.trials)``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.cache import TrialCache
from ..core.report import FairnessReport
from ..core.results import ResultStore
from ..core.runner import CacheMissError, InlineBackend, RunnerStats
from ..core.sweep import SweepPoint, aggregate_pair_results
from ..obs import tracing
from ..services.catalog import ServiceCatalog
from .plan import FleetError, FleetPlan, _dataclass_from_json
from ..config import NetworkConfig


def assemble_store(
    plan: FleetPlan,
    cache: TrialCache,
    catalog: Optional[ServiceCatalog] = None,
) -> Tuple[ResultStore, RunnerStats, List]:
    """Replay the plan against the cache: zero simulations, full store.

    Verifies completeness up front (so a gap fails fast instead of
    triggering an hours-long accidental simulation), then replays every
    planned spec in plan order.  Returns the store (valid trials only,
    matching the watchdog's hygiene rule), the assembly
    :class:`RunnerStats`, and the raw per-trial results in plan order
    (sweep aggregation needs them positionally).

    A plan whose params carry an ``earlystop`` block was executed with
    trial-level early termination armed, so its cache legitimately holds
    truncated entries - the replay accepts them (their windowed-rate
    estimates ARE the cycle's measurements).  Unarmed plans keep the
    strict rule: a truncated entry is a miss, and a miss aborts.
    """
    with tracing.span(
        "report.assemble", plan_kind=plan.kind, trials=len(plan.trials)
    ):
        missing = [
            t.cache_key
            for t in plan.trials
            if not cache.contains_key(t.cache_key)
        ]
        if missing:
            preview = ", ".join(k[:12] + "..." for k in missing[:5])
            raise FleetError(
                f"cache is missing {len(missing)} of {len(plan.trials)} "
                f"planned trials ({preview}) - merge all shards before "
                "assembling"
            )
        armed = (plan.params or {}).get("earlystop") is not None
        backend = InlineBackend(
            catalog=catalog,
            cache=cache,
            cache_only=True,
            accept_truncated=True if armed else None,
        )
        try:
            results = backend.run([t.spec for t in plan.trials])
        except CacheMissError as exc:
            raise FleetError(
                f"assembly would have to simulate {len(exc.misses)} "
                "trial(s) - entries are truncated (early-terminated) or "
                "disappeared mid-assembly; aborting rather than publish "
                "mixed provenance"
            ) from exc
        store = ResultStore()
        store.extend(results, valid_only=True)
        return store, backend.stats, results


def assemble_reports(
    plan: FleetPlan,
    cache: TrialCache,
    catalog: Optional[ServiceCatalog] = None,
) -> List[FairnessReport]:
    """Rebuild the cycle's fairness report(s), one per network setting.

    Bit-identical to the single-host cycle's reports; ``runner_stats``
    on each report documents the zero-simulation assembly.
    """
    if plan.kind != "cycle":
        raise FleetError(f"plan kind {plan.kind!r} does not assemble "
                         "into fairness reports; use assemble_sweep")
    store, stats, _results = assemble_store(plan, cache, catalog=catalog)
    service_ids = list(plan.params["service_ids"])
    reports = []
    for payload in plan.params["networks"]:
        network = _dataclass_from_json(NetworkConfig, payload)
        reports.append(
            FairnessReport(
                store,
                service_ids,
                network.bandwidth_bps,
                runner_stats=stats,
            )
        )
    return reports


def assemble_sweep(
    plan: FleetPlan,
    cache: TrialCache,
    catalog: Optional[ServiceCatalog] = None,
) -> List[SweepPoint]:
    """Rebuild a sweep's (parameter -> shares) curve from the cache.

    Aggregates per sweep point exactly like the in-process sweep
    runners: plan order is point-major with ``trials`` repetitions per
    point, so results slice positionally.
    """
    if plan.kind != "sweep":
        raise FleetError(f"plan kind {plan.kind!r} is not a sweep")
    _store, _stats, results = assemble_store(plan, cache, catalog=catalog)
    values = plan.params["values"]
    trials = plan.params["trials"]
    id_a = plan.params["service_id_a"]
    id_b = plan.params["service_id_b"]
    points = []
    for index, value in enumerate(values):
        window = results[index * trials:(index + 1) * trials]
        share_a, share_b, thr_a, thr_b, util = aggregate_pair_results(window, id_a, id_b)
        points.append(
            SweepPoint(value, share_a, share_b, thr_a, thr_b, util)
        )
    return points
