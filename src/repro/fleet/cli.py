"""``python -m repro fleet ...`` - the multi-host operational surface.

The subcommands mirror the fleet stages:

- ``fleet plan cycle|sweep`` - enumerate the trial matrix, partition it
  by cache-key hash, write ``plan.json`` + ``shard-<i>.json`` manifests
- ``fleet run-shard``        - execute one manifest into a cache dir
  (runs on any host; ship the manifest there and the cache dir back)
- ``fleet merge``            - union shard caches, verifying receipts,
  schema versions, duplicates, and coverage against the plan
- ``fleet status``           - diff receipt coverage against the plan
  mid-run: done / running / stalled / missing shards, trial counts;
  pointed at an adaptive cycle directory it shows per-round
  convergence progress instead
- ``fleet retry``            - emit attempt-bumped manifests for shards
  ``fleet status`` reports missing or stalled
- ``fleet report``           - rebuild the fairness report / sweep curve
  from the merged cache with zero re-simulation
- ``fleet cycle``            - the adaptive multi-round driver: plan ->
  run -> merge -> re-plan until every pair converges or caps out
  (Section 3.4), with receipt recovery via retries

A two-shard local walkthrough lives in the README's multi-host section;
CI runs it end-to-end and asserts the assembled report equals the
single-host one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .. import units
from ..config import ExperimentConfig, NetworkConfig, TrialPolicyConfig
from ..core.cache import TrialCache
from ..core.runner import BACKEND_KINDS
from ..core.sweep import render_sweep
from ..services.catalog import default_catalog
from ..obs.log import get_logger
from .adaptive import (
    ASSEMBLY_PLAN_FILENAME,
    STATE_FILENAME,
    AdaptiveCycleState,
    run_adaptive_cycle,
)
from .assemble import assemble_reports, assemble_sweep
from .merge import merge_shards
from .plan import FleetError, load_plan, plan_cycle, plan_sweep
from .status import DEFAULT_STALL_SEC, fleet_status, retry_manifests
from .worker import run_shard

_log = get_logger("fleet")


def _network(args) -> NetworkConfig:
    return NetworkConfig(
        bandwidth_bps=units.mbps(args.bandwidth),
        buffer_bdp_multiple=args.buffer_bdp,
    )


def _config(args) -> ExperimentConfig:
    return ExperimentConfig().scaled(args.duration)


def _earlystop(args):
    """Earlystop config JSON from ``--earlystop`` knobs, or ``None``."""
    if getattr(args, "earlystop", None) is None:
        return None
    from ..core.earlystop import EarlyStopConfig, EarlyStopModel

    model = EarlyStopModel.load(args.earlystop)
    return EarlyStopConfig(
        model=model, audit_fraction=args.earlystop_audit
    ).to_json()


def _add_earlystop_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--earlystop", default=None, metavar="MODEL.json",
                   help="arm trial-level early termination with this "
                        "model artifact (train one with "
                        "'repro earlystop fit')")
    p.add_argument("--earlystop-audit", type=float, default=0.05,
                   help="fraction of armed trials audited at full length "
                        "to measure the mispredict rate (default: 0.05)")


def cmd_fleet_plan(args) -> int:
    """Write plan.json + per-shard manifests for a cycle or sweep."""
    if args.plan_kind == "cycle":
        ids = args.services or default_catalog().heatmap_ids()
        plan = plan_cycle(
            ids,
            [_network(args)],
            _config(args),
            trials_per_pair=args.trials,
            num_shards=args.shards,
            base_seed=args.seed,
            include_self_pairs=not args.no_self_pairs,
            earlystop=_earlystop(args),
        )
    else:
        values = [float(v) for v in args.values.split(",")]
        plan = plan_sweep(
            args.kind,
            args.service_a,
            args.service_b,
            values,
            _config(args),
            num_shards=args.shards,
            base_network=_network(args),
            trials=args.trials,
            base_seed=args.seed,
        )
    paths = plan.write(args.out_dir)
    sizes = [len(plan.shard_trials(s)) for s in range(plan.num_shards)]
    print(
        f"planned {len(plan.trials)} trials into {plan.num_shards} shards "
        f"{sizes} (plan {plan.plan_id[:12]}...)"
    )
    for path in paths:
        print(f"  {path}")
    return 0


def cmd_fleet_run_shard(args) -> int:
    """Execute one shard manifest into a cache directory."""
    receipt = run_shard(
        args.manifest,
        args.cache_dir,
        backend_kind=args.backend,
        workers=args.workers,
        cache_max_bytes=args.cache_max_bytes,
        record_flight=args.record_flight,
        flight_prefix_points=args.flight_prefix_points,
    )
    stats = receipt.stats
    print(
        f"shard {receipt.shard_index}/{receipt.num_shards}: "
        f"{len(receipt.completed_keys)} trials done "
        f"({stats.trials_run} simulated, {stats.cache_hits} cache hits, "
        f"{stats.wall_clock_sec:.1f}s simulating) -> {args.cache_dir}"
    )
    if receipt.flight_prefix is not None:
        print(
            f"  flight recordings: {len(receipt.flight_prefix)} trial(s) "
            "(full sidecars in the cache dir, prefixes in the receipt)"
        )
    if stats.trials_truncated or stats.trials_audited:
        print(
            f"  earlystop: {stats.trials_truncated} truncated "
            f"({stats.sim_sec_saved:.1f} sim-seconds saved), "
            f"{stats.trials_audited} audited full-length, "
            f"{stats.audit_mispredicts} mispredicted"
        )
    return 0


def cmd_fleet_merge(args) -> int:
    """Union shard cache directories against a plan."""
    plan = load_plan(args.plan)
    report = merge_shards(
        plan,
        args.shard_dirs,
        args.into,
        allow_gaps=args.allow_gaps,
    )
    print(
        f"merged {report.entries_merged} entries from {report.shards} "
        f"shards into {args.into} "
        f"({report.duplicates} duplicates, {report.extras} extras, "
        f"{len(report.gaps)} gaps; fleet simulated "
        f"{report.stats.trials_run} trials in "
        f"{report.stats.wall_clock_sec:.1f}s)"
    )
    if report.superseded_entries:
        print(
            f"  resolved {report.superseded_entries} truncated-vs-full "
            "duplicate entr"
            f"{'y' if report.superseded_entries == 1 else 'ies'} "
            "(full-length wins)"
        )
    for index, stats in sorted(report.per_shard_stats.items()):
        print(
            f"  shard {index}: {stats.trials_run} simulated, "
            f"{stats.cache_hits} cache hits, "
            f"{stats.wall_clock_sec:.1f}s simulating"
        )
    if report.gaps:
        print(f"WARNING: {len(report.gaps)} planned trials uncovered",
              file=sys.stderr)
    return 0


def cmd_fleet_status(args) -> int:
    """Diff on-disk shard coverage against the plan, mid-run safe.

    Exit code 0 when every shard is done, 1 while work remains (so the
    command doubles as a completion probe in wait loops).  Pointed at an
    adaptive cycle directory (one holding ``cycle-state.json``) instead
    of a ``plan.json``, it reports per-round convergence progress.
    """
    target = Path(args.plan)
    if target.is_dir() and (target / STATE_FILENAME).exists():
        state = AdaptiveCycleState.load(target)
        if args.json:
            print(json.dumps(state.progress_json(), indent=1))
        else:
            print(state.render_progress())
        return 0 if state.done else 1
    plan = load_plan(args.plan)
    status = fleet_status(plan, args.dirs, stall_sec=args.stall_sec)
    if args.json:
        print(json.dumps(status.to_json(), indent=1))
    else:
        print(status.render())
    return 0 if status.complete else 1


def cmd_fleet_retry(args) -> int:
    """Write attempt-bumped manifests for missing/stalled shards."""
    plan = load_plan(args.plan)
    status = fleet_status(plan, args.dirs, stall_sec=args.stall_sec)
    manifests = retry_manifests(plan, status, attempt=args.attempt)
    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for manifest in manifests:
        path = (
            out
            / f"shard-{manifest['shard_index']}"
              f"-attempt{manifest['attempt']}.json"
        )
        path.write_text(json.dumps(manifest, indent=1))
        print(
            f"shard {manifest['shard_index']} attempt "
            f"{manifest['attempt']}: {path}"
        )
    if not manifests:
        print("all shards done; nothing to retry")
    return 0


def _fleet_policy(args) -> "TrialPolicyConfig | None":
    """An explicit trial policy from CLI knobs, or None for the paper's."""
    if not any(
        getattr(args, name) is not None
        for name in ("min_trials", "max_trials", "batch_size", "ci_mbps")
    ):
        return None
    base = TrialPolicyConfig()
    return TrialPolicyConfig(
        min_trials=args.min_trials or base.min_trials,
        max_trials=args.max_trials or base.max_trials,
        batch_size=args.batch_size or base.batch_size,
        ci_halfwidth_bps=(
            units.mbps(args.ci_mbps)
            if args.ci_mbps is not None
            else base.ci_halfwidth_bps
        ),
    )


def cmd_fleet_cycle(args) -> int:
    """Run an adaptive multi-round cycle to convergence."""
    ids = args.services or default_catalog().heatmap_ids()
    policy = _fleet_policy(args)
    state = run_adaptive_cycle(
        args.out_dir,
        ids,
        [_network(args)],
        _config(args),
        policies=[policy] if policy is not None else None,
        num_shards=args.shards,
        base_seed=args.seed,
        backend_kind=args.backend,
        workers=args.workers,
        max_retries=args.max_retries,
        earlystop=_earlystop(args),
    )
    summary = {
        "cycle_id": state.cycle_id,
        "rounds": state.round_index,
        "trials_done": state.trials_done_total(),
        "trials_cap": state.trials_cap_total(),
        "trials_saved": state.trials_saved(),
        "verdicts": [t.counts() for t in state.trackers],
        "unstable_pairs": [
            ["|".join(pair) for pair in t.unstable_pairs()]
            for t in state.trackers
        ],
        "out_dir": str(args.out_dir),
    }
    earlystop_rollup = state.progress_json().get("earlystop")
    if earlystop_rollup is not None:
        summary["earlystop"] = earlystop_rollup
    if args.json:
        print(json.dumps(summary, indent=1))
        return 0
    print(state.render_progress())
    if earlystop_rollup is not None:
        rate = earlystop_rollup["audit_mispredict_rate"]
        print(
            f"earlystop: {earlystop_rollup['trials_truncated']} trials "
            f"truncated, {earlystop_rollup['sim_sec_saved']:.1f} "
            f"sim-seconds saved"
            + (f", mispredict rate {rate:.2%}" if rate is not None else "")
        )
    print(
        f"converged in {state.round_index} round(s): "
        f"{state.trials_done_total()} trials run, "
        f"{state.trials_saved()} saved vs the fixed "
        f"{state.trials_cap_total()}-trial plan"
    )
    print(
        f"assemble the report with: repro fleet report --plan "
        f"{Path(args.out_dir) / ASSEMBLY_PLAN_FILENAME} "
        f"--cache-dir {Path(args.out_dir) / 'cache'}"
    )
    return 0


def cmd_fleet_report(args) -> int:
    """Assemble the published artifact from a merged cache."""
    plan = load_plan(args.plan)
    cache = TrialCache(Path(args.cache_dir))
    if plan.kind == "sweep":
        points = assemble_sweep(plan, cache)
        labels = {
            "bandwidth": "bandwidth Mbps",
            "buffer": "buffer xBDP",
            "rtt": "RTT ms",
            "loss": "loss rate",
        }
        kind = plan.params["sweep_kind"]
        print(
            render_sweep(
                points,
                plan.params["service_id_a"],
                plan.params["service_id_b"],
                labels.get(kind, kind),
            )
        )
        return 0
    reports = assemble_reports(plan, cache)
    if args.json:
        payload = [r.to_json() for r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=1))
    else:
        for report in reports:
            print(report.render_heatmap())
            stats = report.losing_service_stats()
            if stats:
                print(f"\nmedian losing share: "
                      f"{stats['median_losing_share'] * 100:.0f}%")
                print(f"most contentious: {report.most_contentious()}  |  "
                      f"least contentious: {report.least_contentious()}")
    assembly = reports[0].runner_stats
    _log.info(
        "fleet.assembled",
        trials_run=assembly.trials_run,
        cache_hits=assembly.cache_hits,
    )
    return 0


def _wrap(func):
    """Surface FleetError as exit code 1 with a clean message."""

    def runner(args) -> int:
        try:
            return func(args)
        except FleetError as exc:
            print(f"fleet error: {exc}", file=sys.stderr)
            return 1

    return runner


def register(sub: argparse._SubParsersAction) -> None:
    """Attach the ``fleet`` command tree to the top-level CLI."""
    fleet = sub.add_parser(
        "fleet", help="sharded multi-host trial execution"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    plan = fleet_sub.add_parser(
        "plan", help="enumerate + partition a trial matrix"
    )
    plan_sub = plan.add_subparsers(dest="plan_kind", required=True)

    def add_plan_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--shards", type=int, required=True,
                       help="number of shards to partition into")
        p.add_argument("--out-dir", required=True,
                       help="directory for plan.json + shard manifests")
        p.add_argument("--trials", type=int, default=3)
        p.add_argument("--bandwidth", type=float, default=8.0,
                       help="bottleneck bandwidth in Mbps (default: 8)")
        p.add_argument("--buffer-bdp", type=float, default=4.0,
                       help="queue size as a BDP multiple (default: 4)")
        p.add_argument("--duration", type=float, default=60.0,
                       help="experiment duration in seconds (default: 60)")
        p.add_argument("--seed", type=int, default=1)

    p = plan_sub.add_parser("cycle", help="all-pairs watchdog cycle")
    p.add_argument("--services", nargs="*", default=None)
    p.add_argument("--no-self-pairs", action="store_true")
    add_plan_common(p)
    _add_earlystop_args(p)
    p.set_defaults(func=_wrap(cmd_fleet_plan))

    p = plan_sub.add_parser("sweep", help="pair parameter sweep")
    p.add_argument("kind", choices=["bandwidth", "buffer", "rtt", "loss"])
    p.add_argument("service_a")
    p.add_argument("service_b")
    p.add_argument("--values", required=True,
                   help="comma-separated parameter values")
    add_plan_common(p)
    p.set_defaults(func=_wrap(cmd_fleet_plan))

    p = fleet_sub.add_parser(
        "run-shard", help="execute one shard manifest on this host"
    )
    p.add_argument("manifest", help="shard-<i>.json written by fleet plan")
    p.add_argument("--cache-dir", required=True,
                   help="cache directory to execute into")
    p.add_argument("--backend", choices=list(BACKEND_KINDS), default=None,
                   help="execution substrate (default: process when "
                        "--workers is set, else inline)")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size / async concurrency")
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   help="LRU-evict the shard cache above this many bytes")
    p.add_argument("--record-flight", action="store_true",
                   help="flight-record simulated trials: full recordings "
                        "as cache sidecars, truncated prefixes in the "
                        "receipt (forces the inline backend)")
    p.add_argument("--flight-prefix-points", type=int, default=32,
                   help="grid points kept per channel in the receipt's "
                        "flight prefix (default: 32)")
    p.set_defaults(func=_wrap(cmd_fleet_run_shard))

    p = fleet_sub.add_parser(
        "merge", help="union shard caches, verify against the plan"
    )
    p.add_argument("shard_dirs", nargs="+",
                   help="shard cache directories to merge")
    p.add_argument("--plan", required=True, help="plan.json path")
    p.add_argument("--into", required=True,
                   help="destination merged cache directory")
    p.add_argument("--allow-gaps", action="store_true",
                   help="tolerate planned trials missing from the union")
    p.set_defaults(func=_wrap(cmd_fleet_merge))

    p = fleet_sub.add_parser(
        "status", help="diff shard receipt coverage against the plan, "
                       "or show an adaptive cycle's round progress"
    )
    p.add_argument("plan", help="plan.json path, or an adaptive cycle "
                                "directory holding cycle-state.json")
    p.add_argument("dirs", nargs="*",
                   help="shard cache directories (or parents of them); "
                        "unused for adaptive cycle directories")
    p.add_argument("--stall-sec", type=float, default=DEFAULT_STALL_SEC,
                   help="flag receipt-less shards with no write newer "
                        "than this as stalled (default: 600)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.set_defaults(func=_wrap(cmd_fleet_status))

    p = fleet_sub.add_parser(
        "retry", help="write attempt-bumped manifests for shards "
                      "status reports missing or stalled"
    )
    p.add_argument("plan", help="plan.json path")
    p.add_argument("dirs", nargs="+",
                   help="shard cache directories (or parents of them)")
    p.add_argument("--out-dir", required=True,
                   help="directory for the retry manifests")
    p.add_argument("--attempt", type=int, default=None,
                   help="explicit attempt number (default: best seen + 1)")
    p.add_argument("--stall-sec", type=float, default=DEFAULT_STALL_SEC,
                   help="flag receipt-less shards with no write newer "
                        "than this as stalled (default: 600)")
    p.set_defaults(func=_wrap(cmd_fleet_retry))

    p = fleet_sub.add_parser(
        "cycle", help="adaptive multi-round cycle: plan/run/merge/re-plan "
                      "until the Section 3.4 stopping rule retires "
                      "every pair"
    )
    p.add_argument("--services", nargs="*", default=None)
    p.add_argument("--shards", type=int, default=2,
                   help="shards per round (default: 2)")
    p.add_argument("--out-dir", required=True,
                   help="cycle directory (state, round plans, cache)")
    p.add_argument("--min-trials", type=int, default=None,
                   help="trial policy floor (default: paper's 10)")
    p.add_argument("--max-trials", type=int, default=None,
                   help="trial policy cap (default: paper's 30)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="trials added per round past the floor "
                        "(default: paper's 10)")
    p.add_argument("--ci-mbps", type=float, default=None,
                   help="CI half-width threshold in Mbps (default: the "
                        "paper's per-bandwidth threshold)")
    p.add_argument("--bandwidth", type=float, default=8.0,
                   help="bottleneck bandwidth in Mbps (default: 8)")
    p.add_argument("--buffer-bdp", type=float, default=4.0,
                   help="queue size as a BDP multiple (default: 4)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="experiment duration in seconds (default: 60)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--backend", choices=list(BACKEND_KINDS), default=None,
                   help="execution substrate for shard workers")
    p.add_argument("--workers", type=int, default=None,
                   help="pool size / async concurrency per shard")
    p.add_argument("--max-retries", type=int, default=2,
                   help="receipt-recovery re-dispatches per shard per "
                        "round (default: 2)")
    _add_earlystop_args(p)
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable cycle summary")
    p.set_defaults(func=_wrap(cmd_fleet_cycle))

    p = fleet_sub.add_parser(
        "report", help="assemble the report from a merged cache"
    )
    p.add_argument("--plan", required=True, help="plan.json path")
    p.add_argument("--cache-dir", required=True,
                   help="merged cache directory")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.set_defaults(func=_wrap(cmd_fleet_report))
