"""Prudentia: an Internet fairness watchdog, reproduced in simulation.

Reproduction of "Prudentia: Findings of an Internet Fairness Watchdog"
(SIGCOMM 2024).  The public API mirrors how the live system is used:

    >>> import repro
    >>> watchdog = repro.Prudentia(
    ...     experiment_config=repro.ExperimentConfig().scaled(60),
    ... )
    >>> result = repro.run_pair_experiment(
    ...     watchdog.catalog.get("youtube"),
    ...     watchdog.catalog.get("iperf_cubic"),
    ...     repro.highly_constrained(),
    ...     watchdog.experiment_config,
    ... )
    >>> 0 <= result.mmf_share["youtube"]
    True

Subpackages: ``netsim`` (the BESS-substitute network emulator),
``transport`` (reliable flows), ``cca`` (congestion controllers),
``services`` (Table-1 workloads), ``browser`` (client fidelity),
``core`` (the watchdog), ``analysis`` (figures and observations).
"""

from . import units
from .config import (
    ExperimentConfig,
    NetworkConfig,
    TrialPolicyConfig,
    highly_constrained,
    moderately_constrained,
    trial_policy_for,
)
from .core import (
    ExperimentResult,
    FairnessReport,
    Prudentia,
    ResultStore,
    SubmissionPortal,
    Testbed,
    TrialPolicy,
    run_pair_experiment,
    run_solo_experiment,
)
from .services import ServiceCatalog, default_catalog
from .browser import ClientEnvironment

__version__ = "1.0.0"

__all__ = [
    "units",
    "ExperimentConfig",
    "NetworkConfig",
    "TrialPolicyConfig",
    "highly_constrained",
    "moderately_constrained",
    "trial_policy_for",
    "ExperimentResult",
    "FairnessReport",
    "Prudentia",
    "ResultStore",
    "SubmissionPortal",
    "Testbed",
    "TrialPolicy",
    "run_pair_experiment",
    "run_solo_experiment",
    "ServiceCatalog",
    "default_catalog",
    "ClientEnvironment",
    "__version__",
]
