"""repro.obs - zero-dependency observability for the watchdog pipeline.

Five small, composable pieces (see DESIGN.md §7):

- :mod:`repro.obs.metrics`   - process-local counters / gauges /
  histograms with JSON snapshot, merge, and diff
- :mod:`repro.obs.tracing`   - wall-clock spans to JSONL, Chrome
  ``trace_event`` export, per-kind percentile summaries
- :mod:`repro.obs.log`       - structured (optionally JSON) logging
- :mod:`repro.obs.heartbeat` - atomic per-cycle heartbeat file so
  ``run_continuously`` is inspectable from outside the process
- :mod:`repro.obs.flight`    - simulation-time flight recorder:
  grid-sampled per-connection CCA state and queue telemetry, plus the
  per-trial diagnosis summaries the service site publishes

Every hook either stays off the simulator's per-packet path entirely
(metrics/tracing/log/heartbeat read counters after a trial and time
*wall* regions) or - for the flight recorder - performs pure reads at
existing event boundaries without scheduling anything, so enabling any
of it cannot perturb simulation output (`tests/test_obs.py` and
`tests/test_flight.py` prove this against the golden-identity fixture).
"""

from .flight import (  # noqa: F401
    DIAGNOSIS_SCHEMA_VERSION,
    FLIGHT_NEVER,
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    diagnose,
    explain_unfairness,
    prefix_summary,
)
from .heartbeat import (  # noqa: F401
    HEARTBEAT_SCHEMA_VERSION,
    Heartbeat,
    HeartbeatWriter,
)
from .log import configure as configure_logging  # noqa: F401
from .log import get_logger  # noqa: F401
from .metrics import (  # noqa: F401
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    merge_snapshots,
    reset_registry,
)
from .tracing import (  # noqa: F401
    TRACE_SCHEMA_VERSION,
    Tracer,
    configure as configure_tracing,
    disable as disable_tracing,
    get_tracer,
    read_spans,
    span,
    summarize,
    to_chrome_trace,
)
