"""repro.obs - zero-dependency observability for the watchdog pipeline.

Four small, composable pieces (see DESIGN.md §7):

- :mod:`repro.obs.metrics`   - process-local counters / gauges /
  histograms with JSON snapshot, merge, and diff
- :mod:`repro.obs.tracing`   - wall-clock spans to JSONL, Chrome
  ``trace_event`` export, per-kind percentile summaries
- :mod:`repro.obs.log`       - structured (optionally JSON) logging
- :mod:`repro.obs.heartbeat` - atomic per-cycle heartbeat file so
  ``run_continuously`` is inspectable from outside the process

Every hook is off the simulator's per-packet path and outside the
simulated clock: instrumentation reads existing counters after a trial
finishes and times regions of *wall* time, so enabling it cannot
perturb simulation output (`tests/test_obs.py` proves this against the
golden-identity fixture).
"""

from .heartbeat import (  # noqa: F401
    HEARTBEAT_SCHEMA_VERSION,
    Heartbeat,
    HeartbeatWriter,
)
from .log import configure as configure_logging  # noqa: F401
from .log import get_logger  # noqa: F401
from .metrics import (  # noqa: F401
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    merge_snapshots,
    reset_registry,
)
from .tracing import (  # noqa: F401
    TRACE_SCHEMA_VERSION,
    Tracer,
    configure as configure_tracing,
    disable as disable_tracing,
    get_tracer,
    read_spans,
    span,
    summarize,
    to_chrome_trace,
)
