"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The watchdog is a long-running deployment (the paper's ran for years);
its operators need to know how many trials ran, how long they took, and
how the cache is behaving - without attaching a metrics stack the
container does not have.  This module is the zero-dependency answer: a
:class:`MetricsRegistry` of named instruments that any layer can bump,
snapshotted to plain JSON.

Snapshots are designed to *travel and merge*: a fleet shard embeds its
snapshot in its :class:`~repro.fleet.worker.ShardReceipt`, and
:func:`merge_snapshots` unions any number of them into fleet-wide
totals (counters and histogram buckets sum; gauges sum too, since every
gauge here measures a per-process quantity - bytes, entries - that adds
across a fleet).  :func:`diff_snapshots` subtracts a "before" snapshot
so one operation's contribution can be isolated from a shared registry.

Nothing in here runs inside the simulated clock or on the per-packet
path: instruments are bumped per *trial* (or per batch), so the golden
bit-identity test and the tracked benchmark stay within noise.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

#: Snapshot payload schema; bump on incompatible layout changes.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bucket upper bounds (seconds-flavoured: trial and
#: batch durations span milliseconds to minutes).
DEFAULT_BUCKET_EDGES: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 300.0, 1800.0,
)

Number = Union[int, float]


class Counter:
    """A monotonically-increasing count (trials run, cache hits, bytes)."""

    kind = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def to_json(self) -> Dict:
        """Snapshot entry: ``{"type": "counter", "value": n}``."""
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value that may go up or down (cache entries)."""

    kind = "gauge"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self.value = value

    def add(self, amount: Number) -> None:
        """Shift the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def to_json(self) -> Dict:
        """Snapshot entry: ``{"type": "gauge", "value": n}``."""
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket distribution of observations (durations, rates).

    ``edges`` are ascending bucket *upper bounds*; an observation lands
    in the first bucket whose edge is >= the value, or in the implicit
    overflow bucket past the last edge (``counts`` has ``len(edges)+1``
    entries).  Fixed edges are what make histograms mergeable across
    processes and hosts without resampling.
    """

    kind = "histogram"
    __slots__ = ("name", "edges", "counts", "sum", "count", "min", "max",
                 "_lock")

    def __init__(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> None:
        chosen = tuple(edges) if edges is not None else DEFAULT_BUCKET_EDGES
        if not chosen or list(chosen) != sorted(chosen):
            raise ValueError("histogram edges must be ascending, non-empty")
        self.name = name
        self.edges = chosen
        self.counts: List[int] = [0] * (len(chosen) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        """Record one observation."""
        with self._lock:
            self.counts[bisect_left(self.edges, value)] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile from the buckets (None when empty).

        Linear interpolation within the winning bucket, clamped to the
        observed min/max so single-observation histograms report the
        observation itself rather than a bucket edge.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count > 0:
                lo = self.edges[index - 1] if index > 0 else (self.min or 0.0)
                hi = (
                    self.edges[index]
                    if index < len(self.edges)
                    else (self.max if self.max is not None else lo)
                )
                fraction = (target - (cumulative - bucket_count)) / bucket_count
                estimate = lo + (hi - lo) * max(0.0, min(1.0, fraction))
                if self.min is not None:
                    estimate = max(estimate, self.min)
                if self.max is not None:
                    estimate = min(estimate, self.max)
                return estimate
        return self.max

    def to_json(self) -> Dict:
        """Snapshot entry: edges, bucket counts, sum/count/min/max."""
        return {
            "type": self.kind,
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted to JSON.

    Accessors are get-or-create: ``registry.counter("cache.hits")``
    returns the same :class:`Counter` every time, so instrumented code
    never checks for existence.  Requesting an existing name as a
    different instrument type is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args) -> Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                return existing
            created = cls(name, *args)
            self._instruments[name] = created
            return created

    def counter(self, name: str) -> Counter:
        """Get or create the :class:`Counter` called ``name``."""
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        """Get or create the :class:`Gauge` called ``name``."""
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the :class:`Histogram` called ``name``.

        ``edges`` applies on first creation only; later callers get the
        existing instrument whatever edges they pass.
        """
        return self._get(name, Histogram, edges)  # type: ignore[return-value]

    def names(self) -> List[str]:
        """Sorted names of every registered instrument."""
        with self._lock:
            return sorted(self._instruments)

    def clear(self) -> None:
        """Drop every instrument (tests; fresh shard deltas)."""
        with self._lock:
            self._instruments.clear()

    # -- snapshot / restore --------------------------------------------

    def snapshot(self) -> Dict:
        """The registry as a plain-JSON payload (receipts, dumps)."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA_VERSION,
                "metrics": {
                    name: instrument.to_json()
                    for name, instrument in sorted(self._instruments.items())
                },
            }

    @classmethod
    def from_snapshot(cls, payload: Dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for name, entry in payload.get("metrics", {}).items():
            kind = entry.get("type")
            if kind == "counter":
                registry.counter(name).value = entry["value"]
            elif kind == "gauge":
                registry.gauge(name).value = entry["value"]
            elif kind == "histogram":
                hist = registry.histogram(name, entry["edges"])
                hist.counts = list(entry["counts"])
                hist.sum = entry["sum"]
                hist.count = entry["count"]
                hist.min = entry.get("min")
                hist.max = entry.get("max")
            # unknown instrument types are skipped (forward compatibility)
        return registry


def _merge_histogram(base: Dict, extra: Dict) -> Dict:
    if base["edges"] != extra["edges"]:
        raise ValueError(
            "cannot merge histograms with different bucket edges"
        )
    mins = [m for m in (base.get("min"), extra.get("min")) if m is not None]
    maxes = [m for m in (base.get("max"), extra.get("max")) if m is not None]
    return {
        "type": "histogram",
        "edges": list(base["edges"]),
        "counts": [a + b for a, b in zip(base["counts"], extra["counts"])],
        "sum": base["sum"] + extra["sum"],
        "count": base["count"] + extra["count"],
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
    }


def merge_snapshots(snapshots: Iterable[Dict]) -> Dict:
    """Union snapshot payloads into one (fleet-wide totals).

    Counters and gauges sum; histograms sum bucket-wise (edges must
    match).  The result is itself a valid snapshot payload.
    """
    merged: Dict[str, Dict] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.get("metrics", {}).items():
            existing = merged.get(name)
            if existing is None:
                merged[name] = json_copy = dict(entry)
                if entry.get("type") == "histogram":
                    json_copy["edges"] = list(entry["edges"])
                    json_copy["counts"] = list(entry["counts"])
                continue
            if existing.get("type") != entry.get("type"):
                raise ValueError(
                    f"metric {name!r} has conflicting types across "
                    "snapshots"
                )
            if entry.get("type") == "histogram":
                merged[name] = _merge_histogram(existing, entry)
            else:
                existing["value"] = existing["value"] + entry["value"]
    return {
        "schema": METRICS_SCHEMA_VERSION,
        "metrics": {name: merged[name] for name in sorted(merged)},
    }


def diff_snapshots(before: Dict, after: Dict) -> Dict:
    """``after - before``: isolate one operation's contribution.

    Counters and gauges subtract; histograms subtract bucket-wise.
    Metrics absent from ``before`` pass through unchanged; metrics that
    went *down* (a cleared registry) pass through at their ``after``
    value rather than going negative.
    """
    base = before.get("metrics", {})
    out: Dict[str, Dict] = {}
    for name, entry in after.get("metrics", {}).items():
        prior = base.get(name)
        if prior is None or prior.get("type") != entry.get("type"):
            out[name] = entry
            continue
        if entry.get("type") == "histogram":
            if prior["edges"] != entry["edges"] or any(
                a < b for a, b in zip(entry["counts"], prior["counts"])
            ):
                out[name] = entry
                continue
            mins = entry.get("min")
            out[name] = {
                "type": "histogram",
                "edges": list(entry["edges"]),
                "counts": [
                    a - b for a, b in zip(entry["counts"], prior["counts"])
                ],
                "sum": entry["sum"] - prior["sum"],
                "count": entry["count"] - prior["count"],
                "min": mins,
                "max": entry.get("max"),
            }
        else:
            delta = entry["value"] - prior["value"]
            if delta < 0:
                delta = entry["value"]
            out[name] = {"type": entry["type"], "value": delta}
    return {"schema": METRICS_SCHEMA_VERSION, "metrics": out}


#: The process-wide default registry instrumented code writes into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def reset_registry() -> MetricsRegistry:
    """Clear the default registry (tests, fresh shard runs); returns it."""
    _REGISTRY.clear()
    return _REGISTRY
