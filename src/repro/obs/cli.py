"""``python -m repro obs ...`` - inspect observability artifacts.

Three subcommands over the files the instrumented pipeline produces:

- ``obs summarize <trace.jsonl>`` - per-span-kind duration percentiles
  (count, total, p50/p90/p95/p99, max) from a tracer JSONL file
- ``obs chrome <trace.jsonl>``    - export the trace in Chrome
  ``trace_event`` format for Perfetto / ``chrome://tracing``
- ``obs heartbeat <file>``        - decode a watchdog heartbeat file
  (phase, progress, ETA, staleness)
- ``obs flight record|summarize|render`` - run a flight-recorded trial,
  print its diagnosis, or render the ASCII timeline / Chrome counters
"""

from __future__ import annotations

import argparse
import json
import sys

from . import flight as flight_mod
from .heartbeat import Heartbeat, describe
from .tracing import read_spans, render_summary, summarize, to_chrome_trace


def cmd_obs_summarize(args) -> int:
    """Print per-span-kind duration percentiles from a JSONL trace."""
    try:
        spans = read_spans(args.trace)
    except OSError as exc:
        print(f"obs error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    summary = summarize(spans)
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(render_summary(summary))
        if summary:
            print(f"\n{len(spans)} spans, {len(summary)} kinds")
    return 0 if summary else 1


def cmd_obs_chrome(args) -> int:
    """Convert a JSONL trace into a Chrome trace_event JSON file."""
    try:
        spans = read_spans(args.trace)
    except OSError as exc:
        print(f"obs error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    payload = to_chrome_trace(spans)
    if args.output == "-":
        json.dump(payload, sys.stdout, indent=1)
        print()
    else:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(
            f"wrote {len(payload['traceEvents'])} events to {args.output} "
            "(open in Perfetto or chrome://tracing)"
        )
    return 0


def cmd_obs_heartbeat(args) -> int:
    """Decode a watchdog heartbeat file; exit 1 when stale."""
    try:
        beat = Heartbeat.load(args.heartbeat)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(
            f"obs error: cannot read heartbeat {args.heartbeat}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        payload = beat.to_json()
        payload["age_sec"] = round(beat.age_sec(), 3)
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(describe(beat))
    stale = (
        args.stale_after is not None and beat.age_sec() > args.stale_after
        and beat.phase != "done"
    )
    if stale:
        print(
            f"WARNING: heartbeat is {beat.age_sec():.0f}s old "
            f"(threshold {args.stale_after:.0f}s) - watchdog stalled?",
            file=sys.stderr,
        )
        return 1
    return 0


def _load_flight(path: str):
    try:
        with open(path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"obs error: cannot read {path}: {exc}", file=sys.stderr)
        return None
    schema = payload.get("schema")
    if schema != flight_mod.FLIGHT_SCHEMA_VERSION:
        print(
            f"obs error: {path} has flight schema {schema!r}, "
            f"expected {flight_mod.FLIGHT_SCHEMA_VERSION}",
            file=sys.stderr,
        )
        return None
    return payload


def cmd_obs_flight_record(args) -> int:
    """Run one flight-recorded pair trial and write the recording JSON."""
    from .. import units
    from ..config import ExperimentConfig, NetworkConfig
    from ..core.experiment import run_trial_artifacts
    from ..services.catalog import default_catalog

    catalog = default_catalog()
    try:
        specs = [catalog.get(sid) for sid in args.services]
    except KeyError as exc:
        print(f"obs error: {exc}", file=sys.stderr)
        return 1
    network = NetworkConfig(
        bandwidth_bps=units.mbps(args.bandwidth),
        buffer_bdp_multiple=args.buffer_bdp,
    )
    recorder = flight_mod.FlightRecorder(grid_usec=args.grid_usec)
    run_trial_artifacts(
        specs,
        network,
        ExperimentConfig().scaled(args.duration),
        seed=args.seed,
        flight=recorder,
    )
    payload = recorder.to_json()
    encoded = json.dumps(payload, indent=1, sort_keys=True)
    if args.out == "-":
        print(encoded)
    else:
        with open(args.out, "w") as fh:
            fh.write(encoded + "\n")
        samples = sum(
            len(c.times_usec) for c in recorder.connections.values()
        )
        print(
            f"recorded {len(recorder.connections)} connection(s), "
            f"{samples} samples to {args.out}"
        )
    return 0


def cmd_obs_flight_summarize(args) -> int:
    """Print the per-trial diagnosis derived from a flight recording."""
    payload = _load_flight(args.recording)
    if payload is None:
        return 1
    diagnosis = flight_mod.diagnose(payload)
    if args.json:
        print(json.dumps(diagnosis, indent=1, sort_keys=True))
    else:
        print(flight_mod.render_summary(diagnosis))
        print()
        print("why is this unfair:")
        for line in flight_mod.explain_unfairness(diagnosis):
            print(f"- {line}")
    return 0


def cmd_obs_flight_render(args) -> int:
    """Render a flight recording: ASCII timeline and/or Chrome counters."""
    payload = _load_flight(args.recording)
    if payload is None:
        return 1
    print(flight_mod.render_timeline(payload, width=args.width))
    if args.chrome is not None:
        events = flight_mod.to_chrome_counters(payload)
        if args.spans is not None:
            try:
                spans = read_spans(args.spans)
            except OSError as exc:
                print(
                    f"obs error: cannot read {args.spans}: {exc}",
                    file=sys.stderr,
                )
                return 1
            events = to_chrome_trace(spans)["traceEvents"] + events
        with open(args.chrome, "w") as fh:
            json.dump({"traceEvents": events}, fh, indent=1)
        print(
            f"wrote {len(events)} counter/span events to {args.chrome} "
            "(open in Perfetto or chrome://tracing)"
        )
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Attach the ``obs`` command tree to the top-level CLI."""
    obs = sub.add_parser(
        "obs", help="inspect metrics / trace / heartbeat artifacts"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    p = obs_sub.add_parser(
        "summarize", help="per-span-kind duration percentiles"
    )
    p.add_argument("trace", help="span JSONL file written via --trace-file")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.set_defaults(func=cmd_obs_summarize)

    p = obs_sub.add_parser(
        "chrome", help="export a trace for Perfetto / chrome://tracing"
    )
    p.add_argument("trace", help="span JSONL file written via --trace-file")
    p.add_argument("--output", "-o", default="trace-chrome.json",
                   help="output file, or '-' for stdout")
    p.set_defaults(func=cmd_obs_chrome)

    p = obs_sub.add_parser(
        "heartbeat", help="decode a watchdog heartbeat file"
    )
    p.add_argument("heartbeat", help="heartbeat JSON file")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON (with age_sec)")
    p.add_argument("--stale-after", type=float, default=None,
                   help="exit 1 when the heartbeat is older than this "
                        "many seconds (and not done)")
    p.set_defaults(func=cmd_obs_heartbeat)

    fl = obs_sub.add_parser(
        "flight", help="simulation-time flight recordings (repro.obs.flight)"
    )
    fl_sub = fl.add_subparsers(dest="flight_command", required=True)

    p = fl_sub.add_parser(
        "record", help="run one flight-recorded trial, write the recording"
    )
    p.add_argument("services", nargs="+",
                   help="service ids to contend (one = solo run)")
    p.add_argument("--bandwidth", type=float, default=8.0,
                   help="bottleneck bandwidth in Mbps (default: 8)")
    p.add_argument("--buffer-bdp", type=float, default=4.0,
                   help="queue size as a BDP multiple (default: 4)")
    p.add_argument("--duration", type=float, default=60.0,
                   help="experiment duration in seconds (default: 60)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--grid-usec", type=int,
                   default=flight_mod.DEFAULT_GRID_USEC,
                   help="sampling grid in simulated usec (default: 100000)")
    p.add_argument("--out", "-o", default="flight.json",
                   help="recording output file, or '-' for stdout")
    p.set_defaults(func=cmd_obs_flight_record)

    p = fl_sub.add_parser(
        "summarize",
        help="dwell times, queue/throughput shares, unfairness diagnosis",
    )
    p.add_argument("recording", help="flight recording JSON file")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable diagnosis")
    p.set_defaults(func=cmd_obs_flight_summarize)

    p = fl_sub.add_parser(
        "render", help="ASCII timeline + optional Chrome counter export"
    )
    p.add_argument("recording", help="flight recording JSON file")
    p.add_argument("--width", type=int, default=60,
                   help="timeline width in characters (default: 60)")
    p.add_argument("--chrome", default=None,
                   help="also write Chrome counter-track JSON here")
    p.add_argument("--spans", default=None,
                   help="merge wall-clock spans from this JSONL trace "
                        "into the --chrome export")
    p.set_defaults(func=cmd_obs_flight_render)
