"""``python -m repro obs ...`` - inspect observability artifacts.

Three subcommands over the files the instrumented pipeline produces:

- ``obs summarize <trace.jsonl>`` - per-span-kind duration percentiles
  (count, total, p50/p90/p95/p99, max) from a tracer JSONL file
- ``obs chrome <trace.jsonl>``    - export the trace in Chrome
  ``trace_event`` format for Perfetto / ``chrome://tracing``
- ``obs heartbeat <file>``        - decode a watchdog heartbeat file
  (phase, progress, ETA, staleness)
"""

from __future__ import annotations

import argparse
import json
import sys

from .heartbeat import Heartbeat, describe
from .tracing import read_spans, render_summary, summarize, to_chrome_trace


def cmd_obs_summarize(args) -> int:
    """Print per-span-kind duration percentiles from a JSONL trace."""
    try:
        spans = read_spans(args.trace)
    except OSError as exc:
        print(f"obs error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    summary = summarize(spans)
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(render_summary(summary))
        if summary:
            print(f"\n{len(spans)} spans, {len(summary)} kinds")
    return 0 if summary else 1


def cmd_obs_chrome(args) -> int:
    """Convert a JSONL trace into a Chrome trace_event JSON file."""
    try:
        spans = read_spans(args.trace)
    except OSError as exc:
        print(f"obs error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1
    payload = to_chrome_trace(spans)
    if args.output == "-":
        json.dump(payload, sys.stdout, indent=1)
        print()
    else:
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(
            f"wrote {len(payload['traceEvents'])} events to {args.output} "
            "(open in Perfetto or chrome://tracing)"
        )
    return 0


def cmd_obs_heartbeat(args) -> int:
    """Decode a watchdog heartbeat file; exit 1 when stale."""
    try:
        beat = Heartbeat.load(args.heartbeat)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(
            f"obs error: cannot read heartbeat {args.heartbeat}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        payload = beat.to_json()
        payload["age_sec"] = round(beat.age_sec(), 3)
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(describe(beat))
    stale = (
        args.stale_after is not None and beat.age_sec() > args.stale_after
        and beat.phase != "done"
    )
    if stale:
        print(
            f"WARNING: heartbeat is {beat.age_sec():.0f}s old "
            f"(threshold {args.stale_after:.0f}s) - watchdog stalled?",
            file=sys.stderr,
        )
        return 1
    return 0


def register(sub: argparse._SubParsersAction) -> None:
    """Attach the ``obs`` command tree to the top-level CLI."""
    obs = sub.add_parser(
        "obs", help="inspect metrics / trace / heartbeat artifacts"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    p = obs_sub.add_parser(
        "summarize", help="per-span-kind duration percentiles"
    )
    p.add_argument("trace", help="span JSONL file written via --trace-file")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON")
    p.set_defaults(func=cmd_obs_summarize)

    p = obs_sub.add_parser(
        "chrome", help="export a trace for Perfetto / chrome://tracing"
    )
    p.add_argument("trace", help="span JSONL file written via --trace-file")
    p.add_argument("--output", "-o", default="trace-chrome.json",
                   help="output file, or '-' for stdout")
    p.set_defaults(func=cmd_obs_chrome)

    p = obs_sub.add_parser(
        "heartbeat", help="decode a watchdog heartbeat file"
    )
    p.add_argument("heartbeat", help="heartbeat JSON file")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON (with age_sec)")
    p.add_argument("--stale-after", type=float, default=None,
                   help="exit 1 when the heartbeat is older than this "
                        "many seconds (and not done)")
    p.set_defaults(func=cmd_obs_heartbeat)
