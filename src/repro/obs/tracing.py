"""Wall-clock span tracing: JSONL spans, Perfetto export, summaries.

A *span* is one timed region of real (wall-clock) time - a trial run, a
cache lookup, a backend dispatch, a shard run, report assembly.  Spans
are recorded to a JSONL file (one JSON object per line, appended and
flushed as each span closes, so a crashed run still leaves a readable
trace) and can be exported in Chrome ``trace_event`` format for viewing
in Perfetto / ``chrome://tracing``.

Two clocks per span: ``ts_us`` is epoch wall time (so traces from
different processes and hosts align on one axis) and ``dur_us`` comes
from ``perf_counter`` (so durations are monotonic and precise).  Parent
linkage is per-thread: nested ``span()`` blocks on the same thread
record their enclosing span's id.

The module-level :func:`span` helper is the instrumentation surface the
rest of the codebase uses.  With no tracer configured it returns a
shared no-op context manager - a dict lookup and two no-op calls per
*trial*, nothing per packet and nothing inside the simulated clock, so
enabling the instrumentation hooks costs the golden-identity test and
the tracked benchmark nothing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

#: Span-record schema; bump on incompatible layout changes.
TRACE_SCHEMA_VERSION = 1

#: Percentiles `summarize` reports for each span kind.
SUMMARY_PERCENTILES = (0.5, 0.9, 0.95, 0.99)


class _SpanHandle:
    """The object a ``with span(...)`` block binds: mutable attrs."""

    __slots__ = ("kind", "attrs", "_tracer", "_span_id", "_parent_id",
                 "_t0", "_wall0")

    def __init__(self, tracer: "Tracer", kind: str, attrs: Dict) -> None:
        self.kind = kind
        self.attrs = attrs
        self._tracer = tracer
        self._span_id = 0
        self._parent_id: Optional[int] = None
        self._t0 = 0.0
        self._wall0 = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (hit counts, sizes)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        self._span_id = tracer._next_id()
        stack = tracer._stack()
        self._parent_id = stack[-1] if stack else None
        stack.append(self._span_id)
        self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_us = int((time.perf_counter() - self._t0) * 1e6)
        stack = self._tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._write(
            kind=self.kind,
            span_id=self._span_id,
            parent_id=self._parent_id,
            ts_us=int(self._wall0 * 1e6),
            dur_us=dur_us,
            attrs=self.attrs,
        )
        return False


class _NullSpan:
    """Shared no-op span used whenever no tracer is configured."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def null_span() -> _NullSpan:
    """The shared no-op span (for conditionally-instrumented regions)."""
    return _NULL_SPAN


class Tracer:
    """Appends closed spans to a JSONL file, thread-safely."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._id = 0
        self.pid = os.getpid()
        self.spans_written = 0

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def span(self, kind: str, **attrs) -> _SpanHandle:
        """A context manager timing one region under this tracer."""
        return _SpanHandle(self, kind, attrs)

    def _write(
        self,
        kind: str,
        span_id: int,
        parent_id: Optional[int],
        ts_us: int,
        dur_us: int,
        attrs: Dict,
    ) -> None:
        record: Dict = {
            "schema": TRACE_SCHEMA_VERSION,
            "kind": kind,
            "id": span_id,
            "ts_us": ts_us,
            "dur_us": dur_us,
            "pid": self.pid,
            "tid": threading.get_ident() & 0xFFFF,
        }
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            self.spans_written += 1

    def close(self) -> None:
        """Close the JSONL file; further spans would raise."""
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


#: The process-wide tracer instrumented code records into (None = off).
_TRACER: Optional[Tracer] = None


def configure(path: Union[str, Path]) -> Tracer:
    """Install a process-wide tracer writing to ``path``; returns it."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(path)
    return _TRACER


def disable() -> None:
    """Close and remove the process-wide tracer (spans become no-ops)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = None


def get_tracer() -> Optional[Tracer]:
    """The process-wide tracer, or None when tracing is off."""
    return _TRACER


def span(kind: str, **attrs) -> Union[_SpanHandle, _NullSpan]:
    """Time one region against the process-wide tracer (no-op when off)."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(kind, **attrs)


# ----------------------------------------------------------------------
# Reading, exporting, summarising
# ----------------------------------------------------------------------


def read_spans(path: Union[str, Path]) -> List[Dict]:
    """Load every span record from a JSONL trace file.

    Blank and truncated trailing lines (a run killed mid-write) are
    skipped rather than fatal: a partial trace is still evidence.
    """
    spans: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "kind" in record:
                spans.append(record)
    return spans


def to_chrome_trace(spans: Iterable[Dict]) -> Dict:
    """Spans as a Chrome ``trace_event`` payload (open in Perfetto).

    Complete events (``ph: "X"``) with microsecond timestamps; span
    attributes ride along as ``args``.  Timestamps are rebased to the
    earliest span so the viewer does not render decades of empty axis.
    """
    records = list(spans)
    base = min((r["ts_us"] for r in records), default=0)
    events = []
    for record in records:
        events.append(
            {
                "name": record["kind"],
                "cat": "repro",
                "ph": "X",
                "ts": record["ts_us"] - base,
                "dur": record.get("dur_us", 0),
                "pid": record.get("pid", 0),
                "tid": record.get("tid", 0),
                "args": record.get("attrs", {}),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated ``q``-percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("no values")
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return (
        sorted_values[lower] * (1 - fraction)
        + sorted_values[upper] * fraction
    )


def summarize(spans: Iterable[Dict]) -> Dict[str, Dict]:
    """Per-span-kind duration statistics (exact, from raw durations).

    Returns ``{kind: {count, total_sec, p50_sec, p90_sec, p95_sec,
    p99_sec, max_sec}}`` sorted by descending total time.
    """
    by_kind: Dict[str, List[float]] = {}
    for record in spans:
        by_kind.setdefault(record["kind"], []).append(
            record.get("dur_us", 0) / 1e6
        )
    out: Dict[str, Dict] = {}
    for kind, durations in by_kind.items():
        durations.sort()
        row = {
            "count": len(durations),
            "total_sec": sum(durations),
            "max_sec": durations[-1],
        }
        for q in SUMMARY_PERCENTILES:
            row[f"p{int(q * 100)}_sec"] = percentile(durations, q)
        out[kind] = row
    return dict(
        sorted(out.items(), key=lambda kv: -kv[1]["total_sec"])
    )


def render_summary(summary: Dict[str, Dict]) -> str:
    """The ``repro obs summarize`` table."""
    if not summary:
        return "(no spans)"
    header = (
        f"{'span kind':<20} {'count':>7} {'total s':>9} {'p50 s':>9} "
        f"{'p90 s':>9} {'p95 s':>9} {'p99 s':>9} {'max s':>9}"
    )
    lines = [header]
    for kind, row in summary.items():
        lines.append(
            f"{kind:<20} {row['count']:>7} {row['total_sec']:>9.3f} "
            f"{row['p50_sec']:>9.4f} {row['p90_sec']:>9.4f} "
            f"{row['p95_sec']:>9.4f} {row['p99_sec']:>9.4f} "
            f"{row['max_sec']:>9.4f}"
        )
    return "\n".join(lines)
