"""Per-cycle heartbeat file: the continuous watchdog, inspectable.

``Prudentia.run_continuously`` is the paper's deployment mode - a loop
that runs for years.  Its operators' first question is always "is it
still making progress, and when will the current cycle finish?", asked
from *outside* the process.  The heartbeat file answers it: a small
JSON document rewritten atomically (write-temp-then-rename, so a reader
never sees a torn write) after every scheduler batch and at every cycle
boundary.

The file records cumulative progress (trials, batches, cycles), the
current phase, and - once at least one cycle has completed - an ETA for
the remaining cycles extrapolated from the mean cycle duration.  A
reader decides liveness from ``age_sec``: a heartbeat older than a few
batch durations means the process died or stalled.

Writes happen per batch (tens of trials, i.e. minutes of simulation per
write), far off the per-packet path and outside the simulated clock.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Heartbeat payload schema; bump on incompatible layout changes.
HEARTBEAT_SCHEMA_VERSION = 1

#: Phases a heartbeat can report.
PHASES = ("starting", "cycle", "idle", "done")


@dataclass
class Heartbeat:
    """One snapshot of watchdog progress (the heartbeat file contents)."""

    pid: int
    phase: str
    started_unix: float
    updated_unix: float
    cycle: int = 0
    cycles_total: Optional[int] = None
    batches_completed: int = 0
    trials_completed: int = 0
    progress: Optional[float] = None
    eta_sec: Optional[float] = None

    def to_json(self) -> Dict:
        """Schema-versioned heartbeat payload (the file contents)."""
        payload = dataclasses.asdict(self)
        payload["schema"] = HEARTBEAT_SCHEMA_VERSION
        return payload

    @classmethod
    def from_json(cls, payload: Dict) -> "Heartbeat":
        """Load a heartbeat, ignoring unknown keys (forward compat)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Heartbeat":
        return cls.from_json(json.loads(Path(path).read_text()))

    def age_sec(self, now: Optional[float] = None) -> float:
        """Seconds since the last update (staleness = death or stall)."""
        return (now if now is not None else time.time()) - self.updated_unix


class HeartbeatWriter:
    """Maintains one heartbeat file for a running watchdog process.

    The watchdog calls :meth:`batch_done` after every executed batch and
    :meth:`cycle_done` at cycle boundaries; ETA and progress fall out of
    the cycle completion times it accumulates.  ``cycles_total`` is set
    by ``run_continuously`` (a one-shot ``run_cycle`` has no horizon, so
    progress/ETA stay ``None``).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.started = time.time()
        self.cycles_total: Optional[int] = None
        self.batches_completed = 0
        self.trials_completed = 0
        self._cycle_marks: List[float] = []

    # -- lifecycle hooks ----------------------------------------------

    def starting(self, cycles_total: Optional[int] = None) -> None:
        """Record startup; ``cycles_total`` enables progress/ETA."""
        if cycles_total is not None:
            self.cycles_total = cycles_total
        self._write(phase="starting")

    def batch_done(self, trials: int) -> None:
        """One scheduler batch finished (``trials`` trials executed)."""
        self.batches_completed += 1
        self.trials_completed += trials
        self._write(phase="cycle")

    def cycle_done(self) -> None:
        """One full cycle finished; refreshes progress and ETA."""
        self._cycle_marks.append(time.time())
        done = (
            self.cycles_total is not None
            and len(self._cycle_marks) >= self.cycles_total
        )
        self._write(phase="done" if done else "idle")

    def finished(self) -> None:
        """Mark the run complete (phase ``done``) regardless of horizon."""
        self._write(phase="done")

    # -- mechanics -----------------------------------------------------

    def _estimate(self) -> "tuple[Optional[float], Optional[float]]":
        """(progress fraction, eta seconds) from cycle completion marks."""
        if self.cycles_total is None or self.cycles_total <= 0:
            return None, None
        completed = len(self._cycle_marks)
        progress = min(1.0, completed / self.cycles_total)
        if completed == 0:
            return progress, None
        per_cycle = (self._cycle_marks[-1] - self.started) / completed
        remaining = max(0, self.cycles_total - completed)
        return progress, per_cycle * remaining

    def _write(self, phase: str) -> None:
        progress, eta = self._estimate()
        beat = Heartbeat(
            pid=os.getpid(),
            phase=phase,
            started_unix=self.started,
            updated_unix=time.time(),
            cycle=len(self._cycle_marks),
            cycles_total=self.cycles_total,
            batches_completed=self.batches_completed,
            trials_completed=self.trials_completed,
            progress=progress,
            eta_sec=eta,
        )
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(beat.to_json(), indent=1, sort_keys=True))
        os.replace(tmp, self.path)


def describe(beat: Heartbeat, now: Optional[float] = None) -> str:
    """One human line for ``repro obs heartbeat``."""
    age = beat.age_sec(now)
    parts = [
        f"phase={beat.phase}",
        f"cycle={beat.cycle}"
        + (f"/{beat.cycles_total}" if beat.cycles_total else ""),
        f"trials={beat.trials_completed}",
        f"batches={beat.batches_completed}",
        f"age={age:.1f}s",
    ]
    if beat.progress is not None:
        parts.append(f"progress={beat.progress * 100:.0f}%")
    if beat.eta_sec is not None:
        parts.append(f"eta={beat.eta_sec:.0f}s")
    return " ".join(parts)
