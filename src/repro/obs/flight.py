"""Simulation-time flight recorder: per-trial CCA and queue telemetry.

The :class:`FlightRecorder` samples what every connection's congestion
controller and the bottleneck queue were *doing* over simulated time -
cwnd, pacing rate, inflight bytes, RTT estimates, retransmissions, the
CCA's internal phase (BBR state machine, Cubic/Vegas/Reno slow-start vs
avoidance), queue occupancy per service, drops and delivered bytes - on a
fixed sim-time grid, so a fairness finding can be *explained* ("BBR sat
in PROBE_BW holding 70% of the queue") instead of just scored.

Zero-new-events invariant
-------------------------
The recorder schedules nothing and mutates nothing.  Sampling is
grid-gated at two existing boundaries - the end of per-ACK processing in
``Connection._handle_ack`` and ``BottleneckLink.send`` (the same spot
``QueueLog.maybe_sample`` already uses) - with the idiom::

    if now >= self._flight_next:
        self._flight_next = self._flight.sample(now, self)

``sample`` performs pure attribute reads and returns the next grid
boundary (``(now // grid + 1) * grid``, anchored to the grid so sampling
never drifts).  When no recorder is attached ``_flight_next`` holds the
:data:`FLIGHT_NEVER` sentinel and the hot path pays exactly one integer
compare.  Heap sequence numbers, tie-breaks and RNG draws are untouched,
so recorded simulations are bit-identical to unrecorded ones
(``tests/test_golden_identity.py`` runs with the recorder enabled).

Storage is columnar (``array``-backed, like
:class:`~repro.netsim.trace.PacketTrace`) with interned phase strings.
This module deliberately imports nothing from ``transport``/``netsim`` -
channels read duck-typed attributes - so those packages can import the
sentinel without a cycle.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional, Tuple

#: Version stamp for recording payloads (bump on layout changes).
FLIGHT_SCHEMA_VERSION = 1

#: Version stamp for diagnosis summaries derived from recordings.
DIAGNOSIS_SCHEMA_VERSION = 1

#: Sentinel "next sample time" when no recorder is attached: far enough
#: in the future that ``now >= FLIGHT_NEVER`` is false for any
#: representable simulation time, so the disabled hot path is a single
#: integer compare.
FLIGHT_NEVER = 1 << 62

#: Default sampling grid: 100 ms of simulated time.  Coarse enough that
#: a 60 s trial stays around 600 points per connection, fine enough to
#: see state-machine phases and queue standing waves.
DEFAULT_GRID_USEC = 100_000

_USEC_PER_SEC = 1_000_000


class ConnChannel:
    """Columnar per-connection telemetry (one row per grid sample)."""

    __slots__ = (
        "service_id",
        "flow_id",
        "cca_name",
        "_grid",
        "times_usec",
        "cwnd_packets",
        "pacing_rate_bps",
        "inflight_bytes",
        "srtt_usec",
        "min_rtt_usec",
        "packets_lost",
        "rto_count",
        "phase_codes",
        "aux1",
        "aux2",
        "phases",
        "_code_of",
    )

    def __init__(self, grid_usec: int, service_id: str, flow_id: str,
                 cca_name: str) -> None:
        self.service_id = service_id
        self.flow_id = flow_id
        self.cca_name = cca_name
        self._grid = grid_usec
        self.times_usec = array("q")
        self.cwnd_packets = array("d")
        self.pacing_rate_bps = array("d")   # -1.0 encodes "unpaced"
        self.inflight_bytes = array("q")
        self.srtt_usec = array("d")         # -1.0 encodes "no sample yet"
        self.min_rtt_usec = array("q")      # -1 encodes "no sample yet"
        self.packets_lost = array("q")      # cumulative
        self.rto_count = array("q")         # cumulative
        self.phase_codes = array("q")
        self.aux1 = array("d")
        self.aux2 = array("d")
        self.phases: List[str] = []         # code -> interned phase name
        self._code_of: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self.times_usec)

    def sample(self, now: int, conn: Any) -> int:
        """Record one grid point from pure reads; return the next grid time."""
        self.times_usec.append(now)
        cca = conn.cca
        self.cwnd_packets.append(cca.cwnd_packets)
        pacing = cca.pacing_rate_bps
        self.pacing_rate_bps.append(-1.0 if pacing is None else pacing)
        self.inflight_bytes.append(len(conn._inflight) * conn.mss_bytes)
        rtt = conn.rtt
        srtt = rtt.srtt_usec
        self.srtt_usec.append(-1.0 if srtt is None else srtt)
        min_rtt = rtt.min_rtt_usec
        self.min_rtt_usec.append(-1 if min_rtt is None else min_rtt)
        self.packets_lost.append(conn.packets_marked_lost)
        self.rto_count.append(conn.rto_count)
        phase, aux1, aux2 = cca.flight_state()
        code = self._code_of.get(phase)
        if code is None:
            code = self._code_of[phase] = len(self.phases)
            self.phases.append(phase)
        self.phase_codes.append(code)
        self.aux1.append(aux1)
        self.aux2.append(aux2)
        grid = self._grid
        return (now // grid + 1) * grid

    def to_json(self) -> Dict:
        """Columnar arrays as plain JSON lists (one key per column)."""
        return {
            "service_id": self.service_id,
            "cca": self.cca_name,
            "times_usec": list(self.times_usec),
            "cwnd_packets": list(self.cwnd_packets),
            "pacing_rate_bps": list(self.pacing_rate_bps),
            "inflight_bytes": list(self.inflight_bytes),
            "srtt_usec": list(self.srtt_usec),
            "min_rtt_usec": list(self.min_rtt_usec),
            "packets_lost": list(self.packets_lost),
            "rto_count": list(self.rto_count),
            "phases": list(self.phases),
            "phase_codes": list(self.phase_codes),
            "aux1": list(self.aux1),
            "aux2": list(self.aux2),
        }

    @classmethod
    def from_json(cls, flow_id: str, payload: Dict,
                  grid_usec: int) -> "ConnChannel":
        ch = cls(grid_usec, payload["service_id"], flow_id, payload["cca"])
        ch.times_usec.extend(payload["times_usec"])
        ch.cwnd_packets.extend(payload["cwnd_packets"])
        ch.pacing_rate_bps.extend(payload["pacing_rate_bps"])
        ch.inflight_bytes.extend(payload["inflight_bytes"])
        ch.srtt_usec.extend(payload["srtt_usec"])
        ch.min_rtt_usec.extend(payload["min_rtt_usec"])
        ch.packets_lost.extend(payload["packets_lost"])
        ch.rto_count.extend(payload["rto_count"])
        ch.phases = list(payload["phases"])
        ch._code_of = {name: i for i, name in enumerate(ch.phases)}
        ch.phase_codes.extend(payload["phase_codes"])
        ch.aux1.extend(payload["aux1"])
        ch.aux2.extend(payload["aux2"])
        return ch


class QueueChannel:
    """Columnar bottleneck-queue telemetry (one row per grid sample).

    Per-service series (queued packets, cumulative drops, delivered
    bytes) are parallel arrays zero-backfilled when a service first
    appears, so every column stays aligned with ``times_usec``.
    """

    __slots__ = (
        "capacity_packets",
        "_grid",
        "times_usec",
        "occupancy",
        "queued_packets",
        "drops",
        "delivered_bytes",
    )

    def __init__(self, grid_usec: int, capacity_packets: int) -> None:
        self.capacity_packets = capacity_packets
        self._grid = grid_usec
        self.times_usec = array("q")
        self.occupancy = array("q")
        self.queued_packets: Dict[str, array] = {}
        self.drops: Dict[str, array] = {}
        self.delivered_bytes: Dict[str, array] = {}

    def __len__(self) -> int:
        return len(self.times_usec)

    @staticmethod
    def _append_row(columns: Dict[str, array], values: Dict[str, int],
                    row: int) -> None:
        for sid, value in values.items():
            col = columns.get(sid)
            if col is None:
                col = columns[sid] = array("q", [0] * row)
            col.append(value)
        if len(columns) > len(values):
            for col in columns.values():
                if len(col) <= row:
                    col.append(0)

    def sample(self, now: int, link: Any) -> int:
        """Record one grid point from pure reads; return the next grid time."""
        row = len(self.times_usec)
        self.times_usec.append(now)
        queue = link.queue
        self.occupancy.append(len(queue._queue))
        counts: Dict[str, int] = {}
        for pkt in queue._queue:
            sid = pkt.flow.service_id
            counts[sid] = counts.get(sid, 0) + 1
        self._append_row(self.queued_packets, counts, row)
        self._append_row(self.drops, dict(queue.drops), row)
        self._append_row(self.delivered_bytes, dict(link.delivered_bytes), row)
        grid = self._grid
        return (now // grid + 1) * grid

    def to_json(self) -> Dict:
        """Columnar arrays as plain JSON (per-service columns sorted)."""
        return {
            "capacity_packets": self.capacity_packets,
            "times_usec": list(self.times_usec),
            "occupancy": list(self.occupancy),
            "queued_packets": {
                sid: list(col) for sid, col in sorted(self.queued_packets.items())
            },
            "drops": {sid: list(col) for sid, col in sorted(self.drops.items())},
            "delivered_bytes": {
                sid: list(col)
                for sid, col in sorted(self.delivered_bytes.items())
            },
        }

    @classmethod
    def from_json(cls, payload: Dict, grid_usec: int) -> "QueueChannel":
        ch = cls(grid_usec, payload["capacity_packets"])
        ch.times_usec.extend(payload["times_usec"])
        ch.occupancy.extend(payload["occupancy"])
        for name in ("queued_packets", "drops", "delivered_bytes"):
            columns = getattr(ch, name)
            for sid, values in payload[name].items():
                columns[sid] = array("q", values)
        return ch


class FlightRecorder:
    """Grid-sampled telemetry for one trial; attach before services build.

    Usage: construct, pass to ``run_trial_artifacts(..., flight=rec)``;
    the testbed arms the bottleneck link and every subsequently created
    connection arms itself.  After the run, ``to_json()`` is the
    versioned sidecar payload.
    """

    def __init__(self, grid_usec: int = DEFAULT_GRID_USEC,
                 meta: Optional[Dict] = None) -> None:
        if grid_usec <= 0:
            raise ValueError("sampling grid must be positive")
        self.grid_usec = grid_usec
        self.meta: Dict = dict(meta or {})
        self.connections: Dict[str, ConnChannel] = {}
        self.queue: Optional[QueueChannel] = None

    def attach(self, link: Any) -> None:
        """Arm the bottleneck link's grid gate (zero events scheduled)."""
        self.queue = QueueChannel(self.grid_usec, link.queue.capacity_packets)
        link.flight = self
        link._flight_next = 0

    def register_connection(self, conn: Any) -> ConnChannel:
        """Create (and return) the channel a connection samples into."""
        channel = ConnChannel(
            self.grid_usec, conn.service_id, conn.flow_id, conn.cca.name
        )
        self.connections[conn.flow_id] = channel
        return channel

    def sample_queue(self, now: int, link: Any) -> int:
        """Sample the armed queue; return the next grid threshold."""
        return self.queue.sample(now, link)

    def to_json(self) -> Dict:
        """The versioned sidecar payload (schema, meta, all channels)."""
        return {
            "schema": FLIGHT_SCHEMA_VERSION,
            "grid_usec": self.grid_usec,
            "meta": dict(self.meta),
            "connections": {
                flow_id: channel.to_json()
                for flow_id, channel in sorted(self.connections.items())
            },
            "queue": self.queue.to_json() if self.queue is not None else None,
        }

    @classmethod
    def from_json(cls, payload: Dict) -> "FlightRecorder":
        schema = payload.get("schema")
        if schema != FLIGHT_SCHEMA_VERSION:
            raise ValueError(f"unsupported flight schema {schema!r}")
        rec = cls(payload["grid_usec"], meta=payload.get("meta"))
        for flow_id, conn_payload in payload.get("connections", {}).items():
            rec.connections[flow_id] = ConnChannel.from_json(
                flow_id, conn_payload, rec.grid_usec
            )
        queue_payload = payload.get("queue")
        if queue_payload is not None:
            rec.queue = QueueChannel.from_json(queue_payload, rec.grid_usec)
        return rec


# ----------------------------------------------------------------------
# Diagnosis: derived summaries over a recording payload
# ----------------------------------------------------------------------


def dwell_times(payload: Dict) -> Dict[str, Dict[str, int]]:
    """Per-connection time spent in each CCA phase, in usec.

    The interval between consecutive samples is attributed to the phase
    observed at the *earlier* sample; the final sample is credited one
    grid period (its phase held at least until the trial ended).
    """
    grid = payload["grid_usec"]
    out: Dict[str, Dict[str, int]] = {}
    for flow_id, conn in payload["connections"].items():
        times = conn["times_usec"]
        codes = conn["phase_codes"]
        phases = conn["phases"]
        dwell: Dict[str, int] = {}
        for i, code in enumerate(codes):
            if i + 1 < len(times):
                span = times[i + 1] - times[i]
            else:
                span = grid
            name = phases[code]
            dwell[name] = dwell.get(name, 0) + span
        out[flow_id] = dwell
    return out


def standing_queue_intervals(
    payload: Dict,
    threshold_fraction: float = 0.5,
    min_duration_usec: int = 500_000,
) -> List[Tuple[int, int]]:
    """Intervals where queue occupancy stood at/above a capacity fraction.

    A bufferbloat signature: the queue never drains below
    ``threshold_fraction * capacity`` for at least ``min_duration_usec``
    of simulated time.  Returns ``[(start_usec, end_usec), ...]``.
    """
    queue = payload.get("queue")
    if not queue or not queue["times_usec"]:
        return []
    threshold = threshold_fraction * queue["capacity_packets"]
    grid = payload["grid_usec"]
    intervals: List[Tuple[int, int]] = []
    start: Optional[int] = None
    last = 0
    for t, occ in zip(queue["times_usec"], queue["occupancy"]):
        if occ >= threshold:
            if start is None:
                start = t
            last = t
        elif start is not None:
            if last + grid - start >= min_duration_usec:
                intervals.append((start, last + grid))
            start = None
    if start is not None and last + grid - start >= min_duration_usec:
        intervals.append((start, last + grid))
    return intervals


def queue_share_series(payload: Dict) -> Tuple[List[int], Dict[str, List[float]]]:
    """Per-service share of queued packets at each sample with occupants."""
    queue = payload.get("queue")
    if not queue:
        return [], {}
    times: List[int] = []
    shares: Dict[str, List[float]] = {sid: [] for sid in queue["queued_packets"]}
    columns = queue["queued_packets"]
    for i, t in enumerate(queue["times_usec"]):
        total = sum(col[i] for col in columns.values())
        if total <= 0:
            continue
        times.append(t)
        for sid, col in columns.items():
            shares[sid].append(col[i] / total)
    return times, shares


def throughput_share_series(
    payload: Dict,
) -> Tuple[List[int], Dict[str, List[float]]]:
    """Per-service share of delivered bytes per grid interval.

    ``delivered_bytes`` counters reset when the measurement window opens
    (``BottleneckLink.reset_stats``); a negative delta is treated as a
    counter reset and the post-reset value is used as the delta.
    """
    queue = payload.get("queue")
    if not queue:
        return [], {}
    columns = queue["delivered_bytes"]
    times: List[int] = []
    shares: Dict[str, List[float]] = {sid: [] for sid in columns}
    prev: Dict[str, int] = {sid: 0 for sid in columns}
    for i, t in enumerate(queue["times_usec"]):
        deltas = {}
        for sid, col in columns.items():
            cur = col[i]
            delta = cur - prev[sid]
            if delta < 0:  # counter reset at the window boundary
                delta = cur
            deltas[sid] = delta
            prev[sid] = cur
        total = sum(deltas.values())
        if total <= 0:
            continue
        times.append(t)
        for sid in columns:
            shares[sid].append(deltas[sid] / total)
    return times, shares


def retransmit_bursts(
    payload: Dict, min_packets: int = 3
) -> Dict[str, List[Tuple[int, int, int]]]:
    """Per-connection grid intervals with heavy retransmission marking.

    Consecutive grid intervals whose cumulative-loss delta is at least
    ``min_packets`` are coalesced into ``(start, end, packets)`` bursts.
    """
    out: Dict[str, List[Tuple[int, int, int]]] = {}
    for flow_id, conn in payload["connections"].items():
        times = conn["times_usec"]
        lost = conn["packets_lost"]
        bursts: List[Tuple[int, int, int]] = []
        start: Optional[int] = None
        end = 0
        count = 0
        for i in range(1, len(times)):
            delta = lost[i] - lost[i - 1]
            if delta >= min_packets:
                if start is None:
                    start = times[i - 1]
                    count = 0
                end = times[i]
                count += delta
            elif start is not None:
                bursts.append((start, end, count))
                start = None
        if start is not None:
            bursts.append((start, end, count))
        if bursts:
            out[flow_id] = bursts
    return out


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def diagnose(payload: Dict) -> Dict:
    """Derive the versioned per-trial diagnosis summary from a recording."""
    grid = payload["grid_usec"]
    queue = payload.get("queue") or {}
    queue_times = queue.get("times_usec") or []
    conn_times = [
        t for conn in payload["connections"].values() for t in conn["times_usec"][-1:]
    ]
    t_end = max([queue_times[-1] if queue_times else 0] + conn_times + [0])
    t_start = min(
        [queue_times[0] if queue_times else t_end]
        + [c["times_usec"][0] for c in payload["connections"].values() if c["times_usec"]]
        + [t_end]
    )
    duration = max(t_end + grid - t_start, grid)

    dwell = dwell_times(payload)
    dwell_out = {
        flow: {
            phase: {
                "usec": usec,
                "fraction": round(usec / max(sum(d.values()), 1), 4),
            }
            for phase, usec in sorted(d.items())
        }
        for flow, d in sorted(dwell.items())
    }

    intervals = standing_queue_intervals(payload)
    standing_usec = sum(end - start for start, end in intervals)
    qs_times, qs = queue_share_series(payload)
    tp_times, tp = throughput_share_series(payload)
    bursts = retransmit_bursts(payload)

    return {
        "schema": DIAGNOSIS_SCHEMA_VERSION,
        "grid_usec": grid,
        "meta": dict(payload.get("meta") or {}),
        "duration_usec": duration,
        "dwell": dwell_out,
        "standing_queue": {
            "capacity_packets": queue.get("capacity_packets"),
            "threshold_fraction": 0.5,
            "intervals_usec": [list(iv) for iv in intervals],
            "fraction": round(standing_usec / duration, 4),
        },
        "queue_share": {
            "times_usec": qs_times,
            "series": {sid: [round(v, 4) for v in col] for sid, col in sorted(qs.items())},
            "mean": {sid: round(_mean(col), 4) for sid, col in sorted(qs.items())},
        },
        "throughput_share": {
            "times_usec": tp_times,
            "series": {sid: [round(v, 4) for v in col] for sid, col in sorted(tp.items())},
            "mean": {sid: round(_mean(col), 4) for sid, col in sorted(tp.items())},
        },
        "retransmit_bursts": {
            flow: {
                "bursts": len(b),
                "packets": sum(count for _s, _e, count in b),
                "intervals_usec": [[s, e] for s, e, _c in b],
            }
            for flow, b in sorted(bursts.items())
        },
    }


def explain_unfairness(diagnosis: Dict) -> List[str]:
    """Deterministic human-readable sentences for a diagnosis summary.

    Used by the service site's "why is this unfair" sections; every
    sentence is derived from the diagnosis alone so regeneration is
    reproducible.
    """
    lines: List[str] = []
    tp_mean = diagnosis.get("throughput_share", {}).get("mean", {})
    if len(tp_mean) >= 2:
        winner = max(sorted(tp_mean), key=lambda s: tp_mean[s])
        loser = min(sorted(tp_mean), key=lambda s: tp_mean[s])
        if winner != loser:
            lines.append(
                f"{winner} captured {tp_mean[winner] * 100:.0f}% of delivered "
                f"bytes vs {loser}'s {tp_mean[loser] * 100:.0f}%."
            )
    qs_mean = diagnosis.get("queue_share", {}).get("mean", {})
    if len(qs_mean) >= 2:
        hog = max(sorted(qs_mean), key=lambda s: qs_mean[s])
        if qs_mean[hog] > 0.55:
            lines.append(
                f"{hog} held {qs_mean[hog] * 100:.0f}% of the bottleneck "
                "queue on average, crowding out competing packets."
            )
    sq = diagnosis.get("standing_queue", {})
    if sq.get("fraction", 0) >= 0.2:
        lines.append(
            f"a standing queue at or above "
            f"{sq.get('threshold_fraction', 0.5) * 100:.0f}% of the "
            f"{sq.get('capacity_packets')}-packet buffer persisted for "
            f"{sq['fraction'] * 100:.0f}% of the trial (bufferbloat)."
        )
    dwell = diagnosis.get("dwell", {})
    for flow in sorted(dwell):
        phases = dwell[flow]
        if not phases:
            continue
        dominant = max(sorted(phases), key=lambda p: phases[p]["usec"])
        frac = phases[dominant]["fraction"]
        if frac >= 0.5 and len(phases) > 1:
            lines.append(
                f"{flow} spent {frac * 100:.0f}% of the trial in the "
                f"{dominant} phase."
            )
    for flow, info in sorted(diagnosis.get("retransmit_bursts", {}).items()):
        lines.append(
            f"{flow} suffered {info['packets']} retransmitted packets "
            f"across {info['bursts']} loss burst(s)."
        )
    if not lines:
        lines.append("no dominant-flow signature detected in this trial.")
    return lines


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

_SPARK = " .:-=+*#%@"


def _phase_letter(phase: str) -> str:
    return (phase[:1] or "?").upper()


def _resample(times: List[int], values: List, t0: int, t1: int,
              width: int) -> List:
    """Pick the latest value at/before each of ``width`` bucket ends."""
    out = []
    j = 0
    span = max(t1 - t0, 1)
    for k in range(width):
        target = t0 + span * (k + 1) // width
        while j + 1 < len(times) and times[j + 1] <= target:
            j += 1
        out.append(values[j] if times and times[j] <= target else None)
    return out


def render_timeline(payload: Dict, width: int = 60) -> str:
    """ASCII timeline: one phase strip per connection plus a queue strip."""
    conns = payload["connections"]
    queue = payload.get("queue") or {}
    all_times = [t for c in conns.values() for t in (c["times_usec"] or [])]
    all_times += queue.get("times_usec") or []
    if not all_times:
        return "flight timeline: no samples recorded"
    t0, t1 = min(all_times), max(all_times)
    grid = payload["grid_usec"]
    lines = [
        f"flight timeline  grid={grid / 1000:g} ms  "
        f"span={t0 / _USEC_PER_SEC:.2f}s..{(t1 + grid) / _USEC_PER_SEC:.2f}s"
    ]
    label_w = max([len(f) for f in conns] + [5]) + 2
    tag_w = max(
        [len(c["cca"]) for c in conns.values()]
        + [len(f"cap {queue.get('capacity_packets', 0)}")]
    )
    legend: Dict[str, str] = {}
    for flow_id in sorted(conns):
        conn = conns[flow_id]
        codes = _resample(conn["times_usec"], conn["phase_codes"], t0, t1, width)
        strip = ""
        for code in codes:
            if code is None:
                strip += " "
            else:
                phase = conn["phases"][code]
                letter = _phase_letter(phase)
                legend.setdefault(letter, phase)
                strip += letter
        cwnds = [v for v in conn["cwnd_packets"] if v is not None]
        lo, hi = (min(cwnds), max(cwnds)) if cwnds else (0, 0)
        lines.append(
            f"{flow_id:<{label_w}}[{conn['cca']:<{tag_w}}] {strip}  "
            f"cwnd {lo:.0f}..{hi:.0f} pkts"
        )
    if queue.get("times_usec"):
        cap = max(queue["capacity_packets"], 1)
        occs = _resample(queue["times_usec"], queue["occupancy"], t0, t1, width)
        strip = ""
        for occ in occs:
            if occ is None:
                strip += " "
            else:
                idx = min(int(occ / cap * (len(_SPARK) - 1)), len(_SPARK) - 1)
                strip += _SPARK[idx]
        tag = f"cap {queue['capacity_packets']}"
        lines.append(
            f"{'queue':<{label_w}}[{tag:<{tag_w}}] "
            f"{strip}  occupancy 0..{max(queue['occupancy'])} pkts"
        )
    if legend:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(legend.items()))
        lines.append(f"phases: {pairs}")
    return "\n".join(lines)


def render_summary(diagnosis: Dict) -> str:
    """Human-readable diagnosis: dwell times, queue share, verdict lines."""
    lines = []
    duration = diagnosis.get("duration_usec", 0)
    lines.append(
        f"flight diagnosis  schema={diagnosis.get('schema')}  "
        f"duration={duration / _USEC_PER_SEC:.2f}s  "
        f"grid={diagnosis.get('grid_usec', 0) / 1000:g}ms"
    )
    lines.append("per-connection CCA state dwell times:")
    for flow, phases in sorted(diagnosis.get("dwell", {}).items()):
        parts = [
            f"{phase} {info['fraction'] * 100:.0f}% "
            f"({info['usec'] / _USEC_PER_SEC:.2f}s)"
            for phase, info in sorted(
                phases.items(), key=lambda kv: -kv[1]["usec"]
            )
        ]
        lines.append(f"  {flow}: " + ", ".join(parts))
    qs = diagnosis.get("queue_share", {})
    if qs.get("mean"):
        parts = [
            f"{sid} {frac * 100:.0f}%" for sid, frac in sorted(qs["mean"].items())
        ]
        lines.append("queue share (mean while occupied): " + "  ".join(parts))
        series = qs.get("series", {})
        times = qs.get("times_usec", [])
        if times:
            lines.append("queue-share series (per sample):")
            for sid in sorted(series):
                strip = "".join(
                    _SPARK[min(int(v * (len(_SPARK) - 1)), len(_SPARK) - 1)]
                    for v in series[sid][:80]
                )
                lines.append(f"  {sid}: {strip}")
    tp = diagnosis.get("throughput_share", {})
    if tp.get("mean"):
        parts = [
            f"{sid} {frac * 100:.0f}%" for sid, frac in sorted(tp["mean"].items())
        ]
        lines.append("throughput share (mean per interval): " + "  ".join(parts))
    sq = diagnosis.get("standing_queue", {})
    if sq:
        lines.append(
            f"standing queue: >={sq.get('threshold_fraction', 0.5) * 100:.0f}% "
            f"of {sq.get('capacity_packets')} packets for "
            f"{sq.get('fraction', 0) * 100:.0f}% of the trial "
            f"({len(sq.get('intervals_usec', []))} interval(s))"
        )
    rb = diagnosis.get("retransmit_bursts", {})
    if rb:
        for flow, info in sorted(rb.items()):
            lines.append(
                f"retransmission bursts: {flow}: {info['packets']} packets "
                f"in {info['bursts']} burst(s)"
            )
    else:
        lines.append("retransmission bursts: none")
    return "\n".join(lines)


def to_chrome_counters(payload: Dict, pid: int = 1) -> List[Dict]:
    """Chrome trace counter events ("ph": "C") for about://tracing.

    Complements the span export in :mod:`repro.obs.tracing`: spans show
    where wall time went, counter tracks show what the simulation was
    doing over *simulated* time (ts is sim usec here).
    """
    events: List[Dict] = []
    for flow_id, conn in sorted(payload["connections"].items()):
        for i, t in enumerate(conn["times_usec"]):
            events.append({
                "name": f"cwnd {flow_id}",
                "ph": "C",
                "ts": t,
                "pid": pid,
                "args": {"packets": conn["cwnd_packets"][i]},
            })
            events.append({
                "name": f"inflight {flow_id}",
                "ph": "C",
                "ts": t,
                "pid": pid,
                "args": {"bytes": conn["inflight_bytes"][i]},
            })
    queue = payload.get("queue")
    if queue:
        for i, t in enumerate(queue["times_usec"]):
            args = {"total": queue["occupancy"][i]}
            for sid, col in sorted(queue["queued_packets"].items()):
                args[sid] = col[i]
            events.append({
                "name": "queue occupancy",
                "ph": "C",
                "ts": t,
                "pid": pid,
                "args": args,
            })
    return events


def prefix_summary(payload: Dict, max_points: int = 32) -> Dict:
    """Truncated first-N-grid-points view of a recording.

    Small enough to embed in a :class:`~repro.fleet.worker.ShardReceipt`
    so fleet merges carry early-trial features (TURBOTEST-style
    early-termination predictors) without shipping full sidecars.
    """
    if max_points <= 0:
        raise ValueError("prefix must keep at least one point")
    conns = {}
    for flow_id, conn in sorted(payload["connections"].items()):
        n = min(max_points, len(conn["times_usec"]))
        codes = conn["phase_codes"][:n]
        conns[flow_id] = {
            "service_id": conn["service_id"],
            "cca": conn["cca"],
            "times_usec": list(conn["times_usec"][:n]),
            "cwnd_packets": list(conn["cwnd_packets"][:n]),
            "inflight_bytes": list(conn["inflight_bytes"][:n]),
            "packets_lost": list(conn["packets_lost"][:n]),
            "phases": list(conn["phases"]),
            "phase_codes": list(codes),
        }
    queue = payload.get("queue") or {}
    qn = min(max_points, len(queue.get("times_usec", [])))
    return {
        "schema": FLIGHT_SCHEMA_VERSION,
        "grid_usec": payload["grid_usec"],
        "points": max_points,
        "meta": dict(payload.get("meta") or {}),
        "connections": conns,
        "queue": {
            "capacity_packets": queue.get("capacity_packets"),
            "times_usec": list(queue.get("times_usec", [])[:qn]),
            "occupancy": list(queue.get("occupancy", [])[:qn]),
        },
    }
