"""Structured logging for the watchdog pipeline.

Replaces the ad-hoc ``print(..., file=sys.stderr)`` diagnostics scattered
through the CLI, fleet, and benchmark code with one event-plus-fields
surface built on the stdlib ``logging`` module (no dependencies):

    log = get_logger("runner")
    log.info("runner.stats", trials_run=12, cache_hits=3)

renders either as a human line::

    info    repro.runner: runner.stats trials_run=12 cache_hits=3

or, with ``--log-json``, as one JSON object per line (machine-ingestable
by whatever collects the deployment's logs)::

    {"event": "runner.stats", "level": "info", ..., "trials_run": 12}

Primary command *output* (heatmaps, tables, ``--json`` payloads) stays
on stdout and is not logging; logs go to stderr.  Library code may log
freely without configuration - records then flow through the stdlib
root logger's default WARNING threshold, so an un-configured import
stays quiet at info/debug exactly like the old silent code paths.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Dict, IO, Optional

#: All repro loggers live under this namespace.
ROOT_LOGGER_NAME = "repro"

LEVELS = ("debug", "info", "warning", "error")

_FIELDS_ATTR = "repro_fields"


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts/level/logger/event plus fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, _FIELDS_ATTR, None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, value)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class TextFormatter(logging.Formatter):
    """Human-readable ``level logger: event key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, _FIELDS_ATTR, None) or {}
        suffix = "".join(
            f" {key}={_compact(value)}" for key, value in fields.items()
        )
        line = (
            f"{record.levelname.lower():<7} {record.name}: "
            f"{record.getMessage()}{suffix}"
        )
        if record.exc_info:
            line += "\n" + self.formatException(record.exc_info)
        return line


def _compact(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    return text if " " not in text else json.dumps(text)


class StructLogger:
    """Thin wrapper adding ``event, **fields`` call style."""

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    def _log(self, level: int, event: str, fields: Dict) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={_FIELDS_ATTR: fields})

    def debug(self, event: str, **fields) -> None:
        """Log ``event`` with ``fields`` at DEBUG."""
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        """Log ``event`` with ``fields`` at INFO."""
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        """Log ``event`` with ``fields`` at WARNING."""
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        """Log ``event`` with ``fields`` at ERROR."""
        self._log(logging.ERROR, event, fields)


def get_logger(name: str) -> StructLogger:
    """A structured logger under the ``repro`` namespace."""
    if name != ROOT_LOGGER_NAME and not name.startswith(
        ROOT_LOGGER_NAME + "."
    ):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return StructLogger(logging.getLogger(name))


def configure(
    level: str = "info",
    json_mode: bool = False,
    stream: Optional[IO] = None,
) -> logging.Logger:
    """Install one handler on the ``repro`` logger (idempotent).

    Called by the CLI from ``--log-level``/``--log-json``; tests pass an
    explicit ``stream`` to capture output.  Re-configuring replaces the
    previous handler rather than stacking duplicates.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; choices: {LEVELS}")
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode else TextFormatter())
    root.addHandler(handler)
    root.setLevel(getattr(logging, level.upper()))
    root.propagate = False
    return root
