"""Units and constants shared across the simulator.

The simulator keeps time as integer microseconds (``int``) so that event
ordering is exact and reproducible across platforms; rates are kept in bits
per second.  All helpers in this module convert between human-friendly units
(milliseconds, Mbps) and the internal representation.
"""

from __future__ import annotations

#: Wire size of a full-sized packet, in bytes.  The paper's queue sizes
#: (128 packets at 8 Mbps and 1024 packets at 50 Mbps for a 4xBDP buffer)
#: are consistent with 1500-byte MTU packets, so we use that everywhere.
MSS_BYTES = 1500

#: Bits in a full-sized packet.
MSS_BITS = MSS_BYTES * 8

#: Microseconds per second; the engine's clock resolution.
USEC_PER_SEC = 1_000_000

#: Microseconds per millisecond.
USEC_PER_MSEC = 1_000


def mbps(value: float) -> float:
    """Convert megabits-per-second to bits-per-second."""
    return value * 1_000_000.0


def to_mbps(bits_per_sec: float) -> float:
    """Convert bits-per-second to megabits-per-second."""
    return bits_per_sec / 1_000_000.0


def seconds(value: float) -> int:
    """Convert seconds to integer microseconds."""
    return int(round(value * USEC_PER_SEC))


def msec(value: float) -> int:
    """Convert milliseconds to integer microseconds."""
    return int(round(value * USEC_PER_MSEC))


def to_seconds(usec: int) -> float:
    """Convert integer microseconds to float seconds."""
    return usec / USEC_PER_SEC


def to_msec(usec: int) -> float:
    """Convert integer microseconds to float milliseconds."""
    return usec / USEC_PER_MSEC


def serialization_time_usec(nbytes: int, rate_bps: float) -> int:
    """Time to serialise ``nbytes`` onto a link of ``rate_bps``, in usec.

    Always at least 1 usec so that back-to-back packets on a link keep a
    strict ordering in the integer-time event queue.
    """
    if rate_bps <= 0:
        raise ValueError("link rate must be positive")
    return max(1, int(round(nbytes * 8 * USEC_PER_SEC / rate_bps)))


def bdp_bytes(rate_bps: float, rtt_usec: int) -> float:
    """Bandwidth-delay product in bytes."""
    return rate_bps * rtt_usec / USEC_PER_SEC / 8.0


def bdp_packets(rate_bps: float, rtt_usec: int, mss: int = MSS_BYTES) -> float:
    """Bandwidth-delay product in ``mss``-byte packets."""
    return bdp_bytes(rate_bps, rtt_usec) / mss


def nearest_power_of_two(value: float) -> int:
    """Round ``value`` to the nearest power of two (BESS queue-size quirk).

    The paper notes that BESS only supports power-of-two queue sizes, so a
    4xBDP buffer of 833 packets becomes 1024 in practice.  Ties round up.
    """
    if value <= 1:
        return 1
    lower = 1 << (int(value).bit_length() - 1)
    if lower > value:
        lower >>= 1
    upper = lower * 2
    if (value - lower) < (upper - value):
        return lower
    return upper
