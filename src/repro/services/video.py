"""On-demand video service: chunked ABR streaming over N flows.

The player fetches fixed-duration chunks at the ladder rung its ABR picks,
striped across the service's flows (Netflix uses 4 connections, Vimeo 2,
YouTube 1 - Table 1).  Once the playback buffer is full the player idles -
the application-limited behaviour that caps these services' throughput in
the moderately-constrained setting.

Rendering-capacity fidelity (Section 3.3): the chosen rung is additionally
capped by the client environment's decode capability, reproducing the
paper's warning that headless/GPU-less clients silently lower the bitrate.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .. import units
from ..cca.base import CongestionControl
from .abr import AbrAlgorithm, BitrateLadder, ThroughputEstimator
from .base import Service


class VideoOnDemandService(Service):
    """A Table-1 style VoD service (YouTube / Netflix / Vimeo)."""

    category = "video"

    def __init__(
        self,
        service_id: str,
        cca_factory: Callable[[int], CongestionControl],
        ladder: BitrateLadder,
        abr: AbrAlgorithm,
        num_flows: int = 1,
        chunk_duration_sec: float = 4.0,
        max_buffer_sec: float = 30.0,
        startup_buffer_sec: float = 4.0,
        resume_buffer_sec: float = 8.0,
        display_name: Optional[str] = None,
        render_cap_bps: Optional[float] = None,
    ) -> None:
        super().__init__(service_id, display_name)
        self.cca_factory = cca_factory
        self.ladder = ladder
        self.abr = abr
        self.num_flows = num_flows
        self.chunk_duration_usec = units.seconds(chunk_duration_sec)
        self.max_buffer_usec = units.seconds(max_buffer_sec)
        self.startup_buffer_usec = units.seconds(startup_buffer_sec)
        self.resume_buffer_usec = units.seconds(resume_buffer_sec)
        self.render_cap_bps = render_cap_bps
        self.estimator = ThroughputEstimator()

        # Playback state (content time, usec).
        self._buffered_usec = 0
        self._played_usec = 0
        self._playing = False
        self._last_play_update = 0

        # Fetch state.
        self.current_index = 0
        self._chunk_start_usec = 0
        self._stripes_outstanding = 0
        self._fetching = False

        # QoE counters (windowed via on_measure_start).
        self.rebuffer_events = 0
        self.bitrate_switches = 0
        self._bitrate_time_sum = 0.0
        self._bitrate_time_usec = 0
        self._last_metric_update = 0
        self.chunks_fetched = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _build(self) -> None:
        for index in range(self.num_flows):
            self.make_connection(self.cca_factory(index), index)

    def _run(self) -> None:
        self._last_play_update = self.engine.now
        self._last_metric_update = self.engine.now
        self._fetch_next_chunk()

    def solo_rate_cap_bps(self) -> Optional[float]:
        return self.ladder.top_bps

    # ------------------------------------------------------------------
    # Rendering cap (Section 3.3 fidelity)
    # ------------------------------------------------------------------

    def _max_render_index(self) -> Optional[int]:
        if self.render_cap_bps is None:
            return None
        return self.ladder.best_below(self.render_cap_bps)

    # ------------------------------------------------------------------
    # Playback clock
    # ------------------------------------------------------------------

    def _advance_playback(self, now: int) -> None:
        self._accumulate_bitrate_time(now)
        if self._playing:
            elapsed = now - self._last_play_update
            self._played_usec = min(
                self._played_usec + elapsed, self._buffered_usec
            )
            if self._played_usec >= self._buffered_usec:
                # Buffer ran dry: a rebuffer event.
                self._playing = False
                self.rebuffer_events += 1
        self._last_play_update = now

    def _maybe_start_playback(self) -> None:
        if self._playing:
            return
        buffered_ahead = self._buffered_usec - self._played_usec
        threshold = (
            self.startup_buffer_usec
            if self._played_usec == 0
            else self.resume_buffer_usec
        )
        if buffered_ahead >= threshold:
            self._playing = True

    @property
    def buffer_sec(self) -> float:
        """Seconds of content buffered ahead of the playhead."""
        return (self._buffered_usec - self._played_usec) / units.USEC_PER_SEC

    # ------------------------------------------------------------------
    # Chunk fetch loop
    # ------------------------------------------------------------------

    def _fetch_next_chunk(self) -> None:
        now = self.engine.now
        self._advance_playback(now)
        if self._buffered_usec - self._played_usec + self.chunk_duration_usec > (
            self.max_buffer_usec
        ):
            # Buffer full: application-limited OFF period; poll again when
            # roughly one chunk's worth of content has played out.
            self._fetching = False
            self.schedule(self.chunk_duration_usec // 2, self._fetch_next_chunk)
            return
        if self._fetching:
            return
        self._fetching = True
        estimate = self.estimator.estimate_bps
        new_index = self.abr.choose(
            self.ladder,
            estimate,
            self.buffer_sec,
            self.current_index,
            max_index=self._max_render_index(),
        )
        if new_index != self.current_index:
            self.bitrate_switches += 1
            self.current_index = new_index
        bitrate = self.ladder[self.current_index]
        chunk_bytes = int(
            bitrate * self.chunk_duration_usec / units.USEC_PER_SEC / 8
        )
        chunk_bytes = max(chunk_bytes, self.bell.network.mss_bytes)
        self._chunk_start_usec = now
        self._chunk_bytes = chunk_bytes
        stripe = max(1, chunk_bytes // self.num_flows)
        self._stripes_outstanding = self.num_flows
        for conn in self.connections:
            conn.request(stripe, on_complete=self._stripe_done)
        self.chunks_fetched += 1

    def _stripe_done(self) -> None:
        self._stripes_outstanding -= 1
        if self._stripes_outstanding:
            return
        now = self.engine.now
        elapsed = max(1, now - self._chunk_start_usec)
        rate = self._chunk_bytes * 8 * units.USEC_PER_SEC / elapsed
        self.estimator.add(rate)
        self._advance_playback(now)
        self._buffered_usec += self.chunk_duration_usec
        self._maybe_start_playback()
        self._fetching = False
        self._fetch_next_chunk()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _accumulate_bitrate_time(self, now: int) -> None:
        span = now - self._last_metric_update
        if span > 0:
            self._bitrate_time_sum += self.ladder[self.current_index] * span
            self._bitrate_time_usec += span
        self._last_metric_update = now

    def on_measure_start(self) -> None:
        now = self.engine.now
        self._advance_playback(now)
        self.rebuffer_events = 0
        self.bitrate_switches = 0
        self._bitrate_time_sum = 0.0
        self._bitrate_time_usec = 0
        self._last_metric_update = now

    def metrics(self) -> Dict[str, float]:
        self._advance_playback(self.engine.now)
        mean_bitrate = (
            self._bitrate_time_sum / self._bitrate_time_usec
            if self._bitrate_time_usec
            else 0.0
        )
        return {
            "mean_selected_bitrate_bps": mean_bitrate,
            "current_bitrate_bps": self.ladder[self.current_index],
            "rebuffer_events": float(self.rebuffer_events),
            "bitrate_switches": float(self.bitrate_switches),
            "buffer_sec": self.buffer_sec,
            "chunks_fetched": float(self.chunks_fetched),
        }
