"""The Table-1 service catalog: every service Prudentia tests.

Each entry couples the paper's documented facts about a service (CCA, flow
count, bitrate caps, quirks) with a factory that builds a fresh instance
for one experiment trial.  Extra entries used by specific figures (Linux
4.15 iPerf BBR, the 2022-era YouTube/Google Drive stacks, five-flow iPerf
BBR) live alongside the primary twelve plus three baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .. import units
from ..browser.environment import ClientEnvironment
from ..cca.bbr import (
    BBRv1,
    BBR_LINUX_4_15,
    BBR_LINUX_5_15,
    BBR_YOUTUBE_QUIC_2022,
    BBR_YOUTUBE_QUIC_2023,
)
from ..cca.bbrv3 import BBRv3
from ..cca.cubic import Cubic
from ..cca.gcc import GoogleCongestionControl
from ..cca.reno import NewReno
from ..cca.teams import TeamsRateController
from .abr import BitrateLadder, BufferRateABR, ConservativeABR
from .base import Service
from .filetransfer import (
    FileTransferService,
    MegaTransferService,
    ThrottledFileTransferService,
)
from .iperf import IperfService
from .rtc import MeetAdaptationPolicy, RtcService, TeamsAdaptationPolicy
from .video import VideoOnDemandService
from .web import PageSpec, ResourceSpec, WebPageService

# ---------------------------------------------------------------------------
# Bitrate ladders (Table 1: available bitrates and caps)
# ---------------------------------------------------------------------------

YOUTUBE_LADDER = BitrateLadder(
    [units.mbps(m) for m in (0.7, 1.1, 1.8, 2.5, 4.5, 8.0, 13.0)]
)
NETFLIX_LADDER = BitrateLadder(
    [units.mbps(m) for m in (0.35, 0.75, 1.75, 3.0, 5.0, 8.0)]
)
VIMEO_LADDER = BitrateLadder(
    [units.mbps(m) for m in (0.6, 1.0, 1.7, 3.2, 5.5, 9.0, 14.0)]
)

# ---------------------------------------------------------------------------
# Page specs (Table 1: web services and their flow counts)
# ---------------------------------------------------------------------------


def _wikipedia_page() -> PageSpec:
    """Mostly text with one or two images; >5 flows on one domain."""
    return PageSpec(
        name="wikipedia.org",
        html=ResourceSpec("html", 120_000, "wikipedia.org"),
        subresources=[
            ResourceSpec("css", 60_000, "wikipedia.org"),
            ResourceSpec("js", 90_000, "wikipedia.org"),
            ResourceSpec("lead-image", 250_000, "upload.wikimedia.org"),
            ResourceSpec("infobox-image", 140_000, "upload.wikimedia.org"),
            ResourceSpec("logo", 25_000, "wikipedia.org"),
            ResourceSpec("fonts", 80_000, "wikipedia.org", above_fold=False),
        ],
    )


def _news_google_page() -> PageSpec:
    """Text plus many thumbnails; >20 flows across several domains."""
    thumbs = [
        ResourceSpec(
            f"thumb-{i}",
            45_000,
            f"img{i % 4}.gstatic.com",
            above_fold=(i < 12),
        )
        for i in range(22)
    ]
    return PageSpec(
        name="news.google.com",
        html=ResourceSpec("html", 450_000, "news.google.com"),
        subresources=[
            ResourceSpec("js-bundle", 700_000, "news.google.com"),
            ResourceSpec("css", 120_000, "news.google.com"),
            ResourceSpec("api", 200_000, "newsapi.google.com"),
        ]
        + thumbs,
    )


def _youtube_web_page() -> PageSpec:
    """Image-heavy thumbnail grid; >10 flows; worst hit by contention."""
    thumbs = [
        ResourceSpec(
            f"thumb-{i}",
            160_000,
            f"i{i % 3}.ytimg.com",
            above_fold=(i < 16),
        )
        for i in range(30)
    ]
    return PageSpec(
        name="youtube.com",
        html=ResourceSpec("html", 600_000, "youtube.com"),
        subresources=[
            ResourceSpec("js-desktop", 1_200_000, "youtube.com"),
            ResourceSpec("css", 150_000, "youtube.com"),
        ]
        + thumbs,
    )


# ---------------------------------------------------------------------------
# Catalog plumbing
# ---------------------------------------------------------------------------

Factory = Callable[[int, ClientEnvironment], Service]


@dataclass(frozen=True)
class ServiceSpec:
    """Catalog entry: paper-documented facts plus a per-trial factory."""

    service_id: str
    display_name: str
    category: str
    cca_label: str
    num_flows: int
    factory: Factory
    max_throughput_bps: Optional[float] = None
    notes: str = ""
    in_heatmap: bool = True

    def create(
        self, seed: int = 0, env: Optional[ClientEnvironment] = None
    ) -> Service:
        """Build a fresh instance of this service for one trial."""
        return self.factory(seed, env or ClientEnvironment.faithful_testbed())


class ServiceCatalog:
    """Registry of testable services (supports third-party additions)."""

    def __init__(self) -> None:
        self._specs: Dict[str, ServiceSpec] = {}

    def register(self, spec: ServiceSpec) -> None:
        """Add a spec to the catalog; duplicate ids are rejected."""
        if spec.service_id in self._specs:
            raise ValueError(f"duplicate service id {spec.service_id!r}")
        self._specs[spec.service_id] = spec

    def get(self, service_id: str) -> ServiceSpec:
        """Look up a spec by id; raises KeyError with suggestions."""
        try:
            return self._specs[service_id]
        except KeyError:
            raise KeyError(
                f"unknown service {service_id!r}; known: {sorted(self._specs)}"
            ) from None

    def create(
        self,
        service_id: str,
        seed: int = 0,
        env: Optional[ClientEnvironment] = None,
    ) -> Service:
        """Shorthand for ``get(service_id).create(seed, env)``."""
        return self.get(service_id).create(seed, env)

    def ids(self) -> List[str]:
        """All registered service ids, sorted."""
        return sorted(self._specs)

    def __contains__(self, service_id: str) -> bool:
        return service_id in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def by_category(self, category: str) -> List[ServiceSpec]:
        """All specs in a Table-1 category."""
        return [s for s in self._specs.values() if s.category == category]

    def heatmap_ids(self) -> List[str]:
        """The Fig-2 all-pairs set: video + file transfer + iPerf."""
        wanted = ("video", "file-transfer", "baseline")
        return [
            s.service_id
            for s in self._specs.values()
            if s.category in wanted and s.in_heatmap
        ]


# ---------------------------------------------------------------------------
# Default catalog construction
# ---------------------------------------------------------------------------


def _flow_seed(seed: int, index: int) -> int:
    return seed * 1009 + index


def default_catalog() -> ServiceCatalog:
    """Build the full Prudentia service catalog (Table 1 + figure extras)."""
    catalog = ServiceCatalog()

    # --- on-demand video --------------------------------------------------
    catalog.register(
        ServiceSpec(
            service_id="youtube",
            display_name="YouTube",
            category="video",
            cca_label="BBRv1.1 (QUIC)",
            num_flows=1,
            max_throughput_bps=units.mbps(13),
            notes="7 bitrates up to 4K; QUIC-based; conservative ABR",
            factory=lambda seed, env: VideoOnDemandService(
                "youtube",
                cca_factory=lambda i: BBRv1(
                    BBR_YOUTUBE_QUIC_2023, seed=_flow_seed(seed, i)
                ),
                ladder=YOUTUBE_LADDER,
                abr=ConservativeABR(),
                num_flows=1,
                display_name="YouTube",
                render_cap_bps=env.render_cap_bps,
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="netflix",
            display_name="Netflix",
            category="video",
            cca_label="NewReno",
            num_flows=4,
            max_throughput_bps=units.mbps(8),
            notes="6 bitrates up to 4K; 4 concurrent flows; run on Safari",
            factory=lambda seed, env: VideoOnDemandService(
                "netflix",
                cca_factory=lambda i: NewReno(),
                ladder=NETFLIX_LADDER,
                abr=BufferRateABR(),
                num_flows=4,
                display_name="Netflix",
                render_cap_bps=env.render_cap_bps,
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="vimeo",
            display_name="Vimeo",
            category="video",
            cca_label="BBR*",
            num_flows=2,
            max_throughput_bps=units.mbps(14),
            notes="7 bitrates up to 4K; CCA classified as BBR",
            factory=lambda seed, env: VideoOnDemandService(
                "vimeo",
                cca_factory=lambda i: BBRv1(
                    BBR_LINUX_4_15, seed=_flow_seed(seed, i)
                ),
                ladder=VIMEO_LADDER,
                abr=ConservativeABR(safety=0.8, up_hysteresis=1.15),
                num_flows=2,
                display_name="Vimeo",
                render_cap_bps=env.render_cap_bps,
            ),
        )
    )

    # --- file transfer ----------------------------------------------------
    catalog.register(
        ServiceSpec(
            service_id="dropbox",
            display_name="Dropbox",
            category="file-transfer",
            cca_label="BBRv1.0",
            num_flows=1,
            factory=lambda seed, env: FileTransferService(
                "dropbox",
                cca_factory=lambda i: BBRv1(
                    BBR_LINUX_4_15, seed=_flow_seed(seed, i)
                ),
                display_name="Dropbox",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="gdrive",
            display_name="Google Drive",
            category="file-transfer",
            cca_label="BBRv3",
            num_flows=1,
            notes="BBRv3 deployed 2023 (Observation 13)",
            factory=lambda seed, env: FileTransferService(
                "gdrive",
                cca_factory=lambda i: BBRv3(seed=_flow_seed(seed, i)),
                display_name="Google Drive",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="onedrive",
            display_name="OneDrive",
            category="file-transfer",
            cca_label="Cubic (extended)",
            num_flows=1,
            max_throughput_bps=units.mbps(45),
            notes="upstream-throttled to ~45 Mbps; unstable across trials",
            factory=lambda seed, env: ThrottledFileTransferService(
                "onedrive",
                cca_factory=lambda i: Cubic(),
                display_name="OneDrive",
                throttle_seed=seed,
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="mega",
            display_name="Mega",
            category="file-transfer",
            cca_label="BBR*",
            num_flows=5,
            notes="5 concurrent flows, batch-of-5 chunks with barrier",
            factory=lambda seed, env: MegaTransferService(
                "mega",
                cca_factory=lambda i: BBRv1(
                    BBR_LINUX_4_15, seed=_flow_seed(seed, i)
                ),
            ),
        )
    )

    # --- RTC ----------------------------------------------------------------
    catalog.register(
        ServiceSpec(
            service_id="meet",
            display_name="Google Meet",
            category="rtc",
            cca_label="GCC",
            num_flows=1,
            max_throughput_bps=units.mbps(1.5),
            in_heatmap=False,
            factory=lambda seed, env: RtcService(
                "meet",
                controller=GoogleCongestionControl(
                    max_rate_bps=units.mbps(1.5)
                ),
                policy=MeetAdaptationPolicy(),
                display_name="Google Meet",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="teams",
            display_name="Microsoft Teams",
            category="rtc",
            cca_label="Unknown",
            num_flows=1,
            max_throughput_bps=units.mbps(2.6),
            in_heatmap=False,
            factory=lambda seed, env: RtcService(
                "teams",
                controller=TeamsRateController(max_rate_bps=units.mbps(2.6)),
                policy=TeamsAdaptationPolicy(),
                display_name="Microsoft Teams",
            ),
        )
    )

    # --- web ----------------------------------------------------------------
    catalog.register(
        ServiceSpec(
            service_id="wikipedia",
            display_name="wikipedia.org",
            category="web",
            cca_label="BBRv1.0",
            num_flows=6,
            in_heatmap=False,
            factory=lambda seed, env: WebPageService(
                "wikipedia",
                page=_wikipedia_page(),
                cca_factory=lambda i: BBRv1(
                    BBR_LINUX_4_15, seed=_flow_seed(seed, i)
                ),
                display_name="wikipedia.org",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="news_google",
            display_name="news.google.com",
            category="web",
            cca_label="BBRv3.0",
            num_flows=21,
            in_heatmap=False,
            factory=lambda seed, env: WebPageService(
                "news_google",
                page=_news_google_page(),
                cca_factory=lambda i: BBRv3(seed=_flow_seed(seed, i)),
                display_name="news.google.com",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="youtube_web",
            display_name="youtube.com",
            category="web",
            cca_label="BBRv3.0",
            num_flows=12,
            in_heatmap=False,
            notes="thumbnail-heavy; different CCA than the video servers",
            factory=lambda seed, env: WebPageService(
                "youtube_web",
                page=_youtube_web_page(),
                cca_factory=lambda i: BBRv3(seed=_flow_seed(seed, i)),
                display_name="youtube.com",
            ),
        )
    )

    # --- iPerf baselines ----------------------------------------------------
    catalog.register(
        ServiceSpec(
            service_id="iperf_bbr",
            display_name="iPerf (BBR)",
            category="baseline",
            cca_label="BBRv1.0 (Linux 5.15)",
            num_flows=1,
            factory=lambda seed, env: IperfService(
                "iperf_bbr",
                cca_factory=lambda i: BBRv1(
                    BBR_LINUX_5_15, seed=_flow_seed(seed, i)
                ),
                display_name="iPerf (BBR)",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="iperf_cubic",
            display_name="iPerf (Cubic)",
            category="baseline",
            cca_label="Cubic (Linux 5.15)",
            num_flows=1,
            factory=lambda seed, env: IperfService(
                "iperf_cubic",
                cca_factory=lambda i: Cubic(),
                display_name="iPerf (Cubic)",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="iperf_reno",
            display_name="iPerf (Reno)",
            category="baseline",
            cca_label="NewReno (Linux 5.15)",
            num_flows=1,
            factory=lambda seed, env: IperfService(
                "iperf_reno",
                cca_factory=lambda i: NewReno(),
                display_name="iPerf (Reno)",
            ),
        )
    )

    # --- figure extras (not part of the regular heatmap rotation) ----------
    catalog.register(
        ServiceSpec(
            service_id="iperf_bbr_415",
            display_name="iPerf (BBR, Linux 4.15)",
            category="baseline",
            cca_label="BBRv1.0 (Linux 4.15)",
            num_flows=1,
            in_heatmap=False,
            notes="Fig 9 comparison kernel",
            factory=lambda seed, env: IperfService(
                "iperf_bbr_415",
                cca_factory=lambda i: BBRv1(
                    BBR_LINUX_4_15, seed=_flow_seed(seed, i)
                ),
                display_name="iPerf (BBR, Linux 4.15)",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="iperf_bbr_x5",
            display_name="iPerf (5 x BBR)",
            category="baseline",
            cca_label="BBRv1.0 x5",
            num_flows=5,
            in_heatmap=False,
            notes="Observation 4 comparator for Mega",
            factory=lambda seed, env: IperfService(
                "iperf_bbr_x5",
                cca_factory=lambda i: BBRv1(
                    BBR_LINUX_4_15, seed=_flow_seed(seed, i)
                ),
                num_flows=5,
                display_name="iPerf (5 x BBR)",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="gdrive_2022",
            display_name="Google Drive (2022)",
            category="file-transfer",
            cca_label="BBRv1",
            num_flows=1,
            in_heatmap=False,
            notes="pre-BBRv3 deployment (Fig 9a 'before')",
            factory=lambda seed, env: FileTransferService(
                "gdrive_2022",
                cca_factory=lambda i: BBRv1(
                    BBR_LINUX_4_15, seed=_flow_seed(seed, i)
                ),
                display_name="Google Drive (2022)",
            ),
        )
    )
    catalog.register(
        ServiceSpec(
            service_id="youtube_2022",
            display_name="YouTube (2022)",
            category="video",
            cca_label="BBRv1 (QUIC, 2022 tuning)",
            num_flows=1,
            max_throughput_bps=units.mbps(13),
            in_heatmap=False,
            notes="pre-tuning QUIC stack (Fig 9a 'before')",
            factory=lambda seed, env: VideoOnDemandService(
                "youtube_2022",
                cca_factory=lambda i: BBRv1(
                    BBR_YOUTUBE_QUIC_2022, seed=_flow_seed(seed, i)
                ),
                ladder=YOUTUBE_LADDER,
                abr=ConservativeABR(),
                num_flows=1,
                display_name="YouTube (2022)",
                render_cap_bps=env.render_cap_bps,
            ),
        )
    )
    return catalog
