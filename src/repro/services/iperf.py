"""iPerf baseline services: N infinitely-backlogged bulk flows.

These are the paper's baselines (Table 1: iPerf BBR / Cubic / Reno on
Linux 5.15) and the '5 x BBR flows' comparator of Observation 4.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..cca.base import CongestionControl
from .base import Service

#: Large enough to outlast any experiment: effectively infinite backlog.
BULK_BYTES = 10**13


class IperfService(Service):
    """``iperf -P n``: n bulk flows with a given congestion controller."""

    category = "baseline"

    def __init__(
        self,
        service_id: str,
        cca_factory: Callable[[int], CongestionControl],
        num_flows: int = 1,
        display_name: Optional[str] = None,
        server_rate_cap_bps: Optional[float] = None,
    ) -> None:
        super().__init__(service_id, display_name)
        if num_flows < 1:
            raise ValueError("need at least one flow")
        self.cca_factory = cca_factory
        self.num_flows = num_flows
        self.server_rate_cap_bps = server_rate_cap_bps

    def _build(self) -> None:
        for index in range(self.num_flows):
            self.make_connection(
                self.cca_factory(index),
                index,
                server_rate_cap_bps=self.server_rate_cap_bps,
            )

    def _run(self) -> None:
        for conn in self.connections:
            conn.request(BULK_BYTES)
