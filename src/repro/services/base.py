"""Service abstraction: a workload attached to the testbed.

A service owns one or more flows to the shared client, plus whatever
application logic drives them.  The experiment runner attaches services to
a :class:`~repro.netsim.topology.Dumbbell`, starts them, and reads both
network-level stats (from the bottleneck) and service-level metrics (from
:meth:`Service.metrics`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .. import units
from ..netsim.engine import NO_ARG
from ..netsim.topology import Dumbbell, Path
from ..transport.connection import Connection
from ..cca.base import CongestionControl


class Service:
    """Base class for every workload in the catalog.

    Subclasses implement :meth:`_build` (create flows) and :meth:`start`
    (kick off the application), and may override :meth:`metrics` and
    :meth:`on_measure_start` for windowed QoE accounting.
    """

    category = "generic"

    def __init__(
        self,
        service_id: str,
        display_name: Optional[str] = None,
        native_rtt_usec: Optional[int] = None,
    ) -> None:
        self.service_id = service_id
        self.display_name = display_name or service_id
        self.native_rtt_usec = native_rtt_usec
        self.bell: Optional[Dumbbell] = None
        self.path: Optional[Path] = None
        self.connections: List[Connection] = []
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, bell: Dumbbell) -> None:
        """Bind this service to a testbed (creates its RTT-normalised path)."""
        if self.bell is not None:
            raise RuntimeError(f"service {self.service_id} already attached")
        self.bell = bell
        self.path = bell.path_for_service(self.service_id, self.native_rtt_usec)
        self._build()

    def start(self) -> None:
        """Begin the workload; must be called after :meth:`attach`."""
        if self.bell is None:
            raise RuntimeError(f"service {self.service_id} is not attached")
        if self._started:
            raise RuntimeError(f"service {self.service_id} already started")
        self._started = True
        self._run()

    def _build(self) -> None:
        """Create flows; override in subclasses."""

    def _run(self) -> None:
        """Start the application control loop; override in subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------

    def make_connection(
        self,
        cca: CongestionControl,
        flow_index: int,
        server_rate_cap_bps: Optional[float] = None,
    ) -> Connection:
        """Create one reliable flow on this service's path."""
        assert self.bell is not None and self.path is not None
        conn = Connection(
            self.bell.engine,
            self.path,
            cca,
            service_id=self.service_id,
            flow_id=f"{self.service_id}-{flow_index}",
            mss_bytes=self.bell.network.mss_bytes,
            server_rate_cap_bps=server_rate_cap_bps,
        )
        self.connections.append(conn)
        return conn

    @property
    def engine(self):
        assert self.bell is not None
        return self.bell.engine

    def schedule(self, delay_usec: int, callback: Callable, arg=NO_ARG) -> None:
        """Schedule an application-level event on the testbed engine.

        ``arg`` is forwarded to the engine's 4-tuple event form: pass a
        bound method plus its operand instead of wrapping them in a
        lambda, so periodic application ticks (frame sends, feedback
        ticks, chunk fetches) allocate no closure per event.
        """
        assert self.bell is not None
        self.bell.engine.schedule(delay_usec, callback, arg)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    @property
    def bytes_received(self) -> int:
        """Unique application bytes received across all flows."""
        return sum(conn.bytes_received for conn in self.connections)

    def on_measure_start(self) -> None:
        """Measurement window opened; reset windowed QoE counters."""

    def metrics(self) -> Dict[str, float]:
        """Service-specific QoE metrics for the measurement window."""
        return {}

    def solo_rate_cap_bps(self) -> Optional[float]:
        """The service's intrinsic maximum rate, if any (Table 1 column).

        Video/RTC services are capped by their top bitrate; OneDrive by an
        upstream throttle.  ``None`` means the service can fill any link.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.service_id}>"


def mbps_received(service: Service, window_usec: int) -> float:
    """Convenience: service goodput over a window, in Mbps."""
    if window_usec <= 0:
        raise ValueError("window must be positive")
    return service.bytes_received * 8 / (window_usec / units.USEC_PER_SEC) / 1e6
