"""Adaptive-bitrate ladders and algorithms.

Observation 2's punchline is that YouTube's ABR - its stability preference
and discrete bitrate ladder - is what makes a BBR-backed service
uncontentious.  Two ABR families are modelled:

* :class:`ConservativeABR` (YouTube/Vimeo-style): a safety factor on the
  throughput estimate, one-rung-at-a-time up-switching with hysteresis.
* :class:`BufferRateABR` (Netflix-style): buffer-occupancy-scaled rate
  targeting that grabs high rungs eagerly when the buffer is healthy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class BitrateLadder:
    """An ascending list of encoded bitrates (bits per second)."""

    def __init__(self, rungs_bps: Sequence[float]) -> None:
        rungs = list(rungs_bps)
        if not rungs:
            raise ValueError("ladder needs at least one rung")
        if sorted(rungs) != rungs:
            raise ValueError("ladder rungs must be ascending")
        if any(r <= 0 for r in rungs):
            raise ValueError("ladder rungs must be positive")
        self.rungs_bps: List[float] = rungs

    def __len__(self) -> int:
        return len(self.rungs_bps)

    def __getitem__(self, index: int) -> float:
        return self.rungs_bps[index]

    @property
    def top_bps(self) -> float:
        return self.rungs_bps[-1]

    def best_below(self, rate_bps: float) -> int:
        """Highest rung index with bitrate <= rate_bps (at least 0)."""
        best = 0
        for index, rung in enumerate(self.rungs_bps):
            if rung <= rate_bps:
                best = index
        return best


class ThroughputEstimator:
    """Harmonic mean of the last N chunk download rates.

    The harmonic mean weights slow chunks heavily, which is what real
    players use to avoid overestimating after one lucky chunk.
    """

    def __init__(self, window: int = 5) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self._samples: List[float] = []

    def add(self, rate_bps: float) -> None:
        """Feed one chunk's measured download rate."""
        if rate_bps <= 0:
            return
        self._samples.append(rate_bps)
        if len(self._samples) > self.window:
            self._samples.pop(0)

    @property
    def estimate_bps(self) -> Optional[float]:
        if not self._samples:
            return None
        return len(self._samples) / sum(1.0 / s for s in self._samples)


class AbrAlgorithm:
    """Strategy interface: choose the next chunk's ladder rung."""

    name = "abr"

    def choose(
        self,
        ladder: BitrateLadder,
        estimate_bps: Optional[float],
        buffer_sec: float,
        current_index: int,
        max_index: Optional[int] = None,
    ) -> int:
        """Return the ladder index for the next chunk."""
        raise NotImplementedError


class ConservativeABR(AbrAlgorithm):
    """Stability-first ABR (YouTube-like).

    Applies a safety factor to the estimate, climbs one rung at a time and
    only when the estimate comfortably exceeds the next rung, but drops
    immediately when the safe rate falls below the current rung.
    """

    name = "conservative"

    def __init__(
        self,
        safety: float = 0.75,
        up_hysteresis: float = 1.25,
        panic_buffer_sec: float = 5.0,
    ) -> None:
        if not 0 < safety <= 1:
            raise ValueError("safety must be in (0, 1]")
        self.safety = safety
        self.up_hysteresis = up_hysteresis
        self.panic_buffer_sec = panic_buffer_sec

    def choose(
        self,
        ladder: BitrateLadder,
        estimate_bps: Optional[float],
        buffer_sec: float,
        current_index: int,
        max_index: Optional[int] = None,
    ) -> int:
        """Safety-factored pick with one-rung hysteretic up-switching."""
        ceiling = len(ladder) - 1 if max_index is None else min(max_index, len(ladder) - 1)
        if estimate_bps is None:
            return min(current_index, ceiling)
        if buffer_sec < self.panic_buffer_sec:
            # Nearly stalled: take the safest rung that the estimate can
            # sustain with a wide margin.
            return min(ladder.best_below(0.5 * estimate_bps), ceiling)
        safe = ladder.best_below(self.safety * estimate_bps)
        safe = min(safe, ceiling)
        if safe > current_index:
            next_index = current_index + 1
            if estimate_bps >= self.up_hysteresis * ladder[next_index]:
                return min(next_index, ceiling)
            return min(current_index, ceiling)
        return safe


class BufferRateABR(AbrAlgorithm):
    """Buffer-scaled rate targeting (Netflix-like).

    The deeper the playback buffer, the more aggressively the estimate is
    trusted; a shallow buffer forces the bottom rung.  Multi-rung jumps are
    allowed in both directions.
    """

    name = "buffer-rate"

    def __init__(
        self,
        aggressive_factor: float = 0.95,
        normal_factor: float = 0.8,
        deep_buffer_sec: float = 15.0,
        shallow_buffer_sec: float = 6.0,
        panic_buffer_sec: float = 3.0,
    ) -> None:
        self.aggressive_factor = aggressive_factor
        self.normal_factor = normal_factor
        self.deep_buffer_sec = deep_buffer_sec
        self.shallow_buffer_sec = shallow_buffer_sec
        self.panic_buffer_sec = panic_buffer_sec

    def choose(
        self,
        ladder: BitrateLadder,
        estimate_bps: Optional[float],
        buffer_sec: float,
        current_index: int,
        max_index: Optional[int] = None,
    ) -> int:
        """Buffer-occupancy-scaled rate targeting with multi-rung jumps."""
        ceiling = len(ladder) - 1 if max_index is None else min(max_index, len(ladder) - 1)
        if buffer_sec < self.panic_buffer_sec:
            return 0
        if estimate_bps is None:
            return min(current_index, ceiling)
        if buffer_sec >= self.deep_buffer_sec:
            factor = self.aggressive_factor
        elif buffer_sec >= self.shallow_buffer_sec:
            factor = self.normal_factor
        else:
            factor = 0.6
        return min(ladder.best_below(factor * estimate_bps), ceiling)
