"""File-transfer services: Dropbox/Drive/OneDrive-style bulk downloads and
Mega's batched multi-flow downloader.

Mega's client (a custom javascript framework, per Observation 3/4) opens
five concurrent flows and downloads the file in *batches* of five chunks -
one chunk per flow - with a synchronisation barrier: no flow starts its
next chunk until every flow in the batch has finished, after which the
client spends a moment decrypting/assembling before issuing the next
batch.  The barrier plus the restart burst is what makes Mega's traffic
bursty and uniquely contentious.
"""

from __future__ import annotations

from typing import Callable, Optional

from .. import units
from ..cca.base import CongestionControl
from .base import Service


class FileTransferService(Service):
    """A plain cloud-drive download: one (or more) flows, one big file."""

    category = "file-transfer"

    def __init__(
        self,
        service_id: str,
        cca_factory: Callable[[int], CongestionControl],
        num_flows: int = 1,
        file_bytes: int = 10 * 10**9,
        display_name: Optional[str] = None,
        server_rate_cap_bps: Optional[float] = None,
    ) -> None:
        super().__init__(service_id, display_name)
        self.cca_factory = cca_factory
        self.num_flows = num_flows
        self.file_bytes = file_bytes
        self.server_rate_cap_bps = server_rate_cap_bps
        self.completed = False

    def _build(self) -> None:
        for index in range(self.num_flows):
            self.make_connection(
                self.cca_factory(index),
                index,
                server_rate_cap_bps=self.server_rate_cap_bps,
            )

    def _run(self) -> None:
        share = max(1, self.file_bytes // self.num_flows)
        remaining = self.num_flows

        def done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self.completed = True

        for conn in self.connections:
            conn.request(share, on_complete=done)

    def solo_rate_cap_bps(self) -> Optional[float]:
        return self.server_rate_cap_bps


class ThrottledFileTransferService(FileTransferService):
    """A bulk download behind a *varying* upstream throttle (OneDrive).

    The paper finds OneDrive throughput-capped outside the testbed
    (~45 Mbps on a 1 Gbps link) and - Observation 15 - notably *unstable*
    across trials in both bandwidth settings.  We model the upstream
    service throttle as a server-side pacing cap that re-draws itself at
    random intervals, seeded per trial, which yields exactly the
    sometimes-contentious, sometimes-not scatter of Fig 10.
    """

    #: (cap in Mbps, weight): full speed roughly half the time, with
    #: regular sags and occasional deep dips - wide enough that the
    #: throttle actually binds against typical competitors, producing the
    #: Fig-10 trial-to-trial scatter.
    CAP_CHOICES = [(45.0, 0.45), (28.0, 0.2), (15.0, 0.2), (6.0, 0.15)]

    def __init__(self, *args, throttle_seed: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.throttle_seed = throttle_seed
        self._rng = None

    def _run(self) -> None:
        import random

        self._rng = random.Random(self.throttle_seed)
        super()._run()
        self._redraw_throttle()

    def _redraw_throttle(self) -> None:
        assert self._rng is not None
        roll = self._rng.random()
        acc = 0.0
        cap_mbps = self.CAP_CHOICES[-1][0]
        for cap, weight in self.CAP_CHOICES:
            acc += weight
            if roll <= acc:
                cap_mbps = cap
                break
        cap_bps = units.mbps(cap_mbps)
        for conn in self.connections:
            conn.server_rate_cap_bps = cap_bps
        self.server_rate_cap_bps = cap_bps
        hold = units.seconds(self._rng.uniform(10.0, 20.0))
        self.schedule(hold, self._redraw_throttle)

    def solo_rate_cap_bps(self):
        return units.mbps(45.0)


class MegaTransferService(Service):
    """Mega: batches of five chunks over five *fresh* flows plus a barrier.

    Two documented behaviours combine into the paper's most contentious
    service:

    * the batch barrier (no flow starts its next chunk until all five
      finish, then the client decrypts before the next batch), and
    * per-batch connection cycling by the javascript downloader, so every
      batch begins with five synchronized BBR *startups* - the violent
      bursts of Fig 4 that shove loss-based competitors into repeated
      backoff and cause the highest loss rates of any service (Fig 12).
    """

    category = "file-transfer"

    def __init__(
        self,
        service_id: str = "mega",
        cca_factory: Optional[Callable[[int], CongestionControl]] = None,
        num_flows: int = 5,
        chunk_bytes: int = 2 * 2**20,
        batch_gap_usec: int = units.msec(100),
        file_bytes: int = 10 * 10**9,
        display_name: str = "Mega",
        fresh_connections_per_batch: bool = True,
    ) -> None:
        super().__init__(service_id, display_name)
        if cca_factory is None:
            raise ValueError("Mega needs a CCA factory (it runs BBR in the wild)")
        self.cca_factory = cca_factory
        self.num_flows = num_flows
        self.chunk_bytes = chunk_bytes
        self.batch_gap_usec = batch_gap_usec
        self.file_bytes = file_bytes
        self.fresh_connections_per_batch = fresh_connections_per_batch
        self.batches_completed = 0
        self._bytes_requested = 0
        self._outstanding = 0
        self._flow_counter = 0
        self._active: list = []

    def _build(self) -> None:
        if not self.fresh_connections_per_batch:
            for index in range(self.num_flows):
                self._flow_counter += 1
                self._active.append(
                    self.make_connection(self.cca_factory(index), index)
                )

    def _run(self) -> None:
        self._start_batch()

    def _batch_connections(self) -> list:
        if not self.fresh_connections_per_batch:
            return self._active
        previous = self._active
        batch = []
        for slot in range(self.num_flows):
            index = self._flow_counter
            self._flow_counter += 1
            conn = self.make_connection(self.cca_factory(index), index)
            if slot < len(previous):
                # Warm-start from the previous batch's model (server-side
                # per-destination metric caching): the new flow's STARTUP
                # opens at the previous bandwidth estimate, producing the
                # per-batch burst of Fig 4.
                old = previous[slot].cca
                btlbw = getattr(old, "btlbw_bps", 0.0)
                min_rtt = getattr(old, "min_rtt_usec", None) or 0
                if hasattr(conn.cca, "warm_start"):
                    conn.cca.warm_start(btlbw, min_rtt)
            batch.append(conn)
        self._active = batch
        return batch

    def _start_batch(self) -> None:
        if self._bytes_requested >= self.file_bytes:
            return
        self._outstanding = self.num_flows
        for conn in self._batch_connections():
            self._bytes_requested += self.chunk_bytes
            conn.request(self.chunk_bytes, on_complete=self._chunk_done)

    def _chunk_done(self) -> None:
        self._outstanding -= 1
        if self._outstanding == 0:
            # Barrier passed: decrypt/assemble, then fire the next batch of
            # five chunks simultaneously (the Fig 4 burst).
            self.batches_completed += 1
            self.schedule(self.batch_gap_usec, self._start_batch)

    def metrics(self):
        return {"batches_completed": float(self.batches_completed)}
