"""Real-time communication services (Google Meet / Microsoft Teams).

An RTC service is an unreliable, paced media flow: the sender emits video
frames at the rate/fps its adaptation policy picks, a feedback loop reports
receive rate, delay and loss to the rate controller (GCC for Meet, the
Teams-like controller for Teams), and the receiver computes the paper's
Table-2 QoE metrics: majority resolution, average FPS, freezes per minute
(the WebRTC freeze definition), and the fraction of packets exceeding the
ITU 190 ms RTT requirement.

The two services' *adaptation policies* differ per Observation 5: Meet
degrades resolution first and protects frame rate; Teams holds resolution
and lets FPS sag.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import units
from ..netsim.packet import Packet
from .base import Service

#: ITU requirement the paper checks packets against (190 ms RTT).
ITU_RTT_LIMIT_USEC = units.msec(190)

#: Feedback (RTCP-like) reporting period.
FEEDBACK_PERIOD_USEC = units.msec(100)

#: Keyframe cadence and size multiplier.
KEYFRAME_PERIOD_USEC = units.seconds(3)
KEYFRAME_FACTOR = 3.0


class _Frame:
    """Sender-side record of one video frame in flight."""

    __slots__ = ("frame_id", "packets_total", "packets_received", "dropped", "sent_time")

    def __init__(self, frame_id: int, packets_total: int, sent_time: int) -> None:
        self.frame_id = frame_id
        self.packets_total = packets_total
        self.packets_received = 0
        self.dropped = False
        self.sent_time = sent_time


class RtcAdaptationPolicy:
    """Maps a target rate to (resolution height, frames per second)."""

    #: (minimum rate bps, resolution height) pairs, descending.
    resolution_ladder: List[Tuple[float, int]] = [
        (units.mbps(1.0), 720),
        (units.mbps(0.5), 480),
        (units.mbps(0.3), 360),
        (units.mbps(0.15), 240),
        (0.0, 180),
    ]

    def select(self, rate_bps: float) -> Tuple[int, float]:
        """Pick (resolution height, fps) for the given media rate."""
        raise NotImplementedError
        """Pick (resolution height, fps) for the given media rate."""


class MeetAdaptationPolicy(RtcAdaptationPolicy):
    """Resolution-first degradation: FPS is protected (Observation 5)."""

    def select(self, rate_bps: float) -> Tuple[int, float]:
        """Downscale resolution as rate falls; never touch the 30 fps."""
        for min_rate, height in self.resolution_ladder:
            if rate_bps >= min_rate:
                return height, 30.0
        return 180, 30.0


class TeamsAdaptationPolicy(RtcAdaptationPolicy):
    """Resolution-holding degradation: FPS is sacrificed (Observation 5)."""

    #: Approximate bits per frame needed to hold a resolution at decent
    #: quality (height -> bits/frame).
    BITS_PER_FRAME = {720: 45_000, 480: 25_000, 360: 15_000, 240: 9_000, 180: 6_000}

    def select(self, rate_bps: float) -> Tuple[int, float]:
        """Hold resolution while the rate affords >=10 fps; pay in FPS."""
        # Hold the highest resolution whose minimum watchable frame rate
        # (10 fps) still fits in the rate; spend whatever is left on FPS.
        for height in (720, 480, 360, 240, 180):
            needed = self.BITS_PER_FRAME[height] * 10
            if rate_bps >= needed:
                fps = min(30.0, rate_bps / self.BITS_PER_FRAME[height])
                return height, max(10.0, fps)
        return 180, 10.0


class RtcMetrics:
    """Windowed QoE accounting for one RTC service."""

    def __init__(self) -> None:
        self.reset(0)

    def reset(self, now: int) -> None:
        """Open a fresh QoE accounting window at ``now``."""
        self.window_start = now
        self.frames_rendered = 0
        self.freezes = 0
        self.packets_total = 0
        self.packets_high_delay = 0
        self.resolution_time_usec: Dict[int, int] = {}
        self._last_render_time: Optional[int] = None
        self._mean_interarrival_usec = 33_333.0
        # RFC 3550 interarrival-jitter estimator state.
        self._last_transit_usec: Optional[int] = None
        self._jitter_usec = 0.0
        self._delay_sum_usec = 0.0

    def on_frame_rendered(self, now: int) -> None:
        """A complete frame reached the screen; updates FPS/freezes."""
        self.frames_rendered += 1
        if self._last_render_time is not None:
            gap = now - self._last_render_time
            delta = self._mean_interarrival_usec
            if gap > max(3 * delta, delta + units.msec(150)):
                self.freezes += 1
            self._mean_interarrival_usec = 0.9 * delta + 0.1 * gap
        self._last_render_time = now

    def on_packet(self, rtt_equivalent_usec: int) -> None:
        """Account one received media packet's delay (ITU check, jitter)."""
        self.packets_total += 1
        self._delay_sum_usec += rtt_equivalent_usec
        if rtt_equivalent_usec > ITU_RTT_LIMIT_USEC:
            self.packets_high_delay += 1
        # RFC 3550 jitter: smoothed absolute transit-time variation.
        if self._last_transit_usec is not None:
            variation = abs(rtt_equivalent_usec - self._last_transit_usec)
            self._jitter_usec += (variation - self._jitter_usec) / 16.0
        self._last_transit_usec = rtt_equivalent_usec

    def add_resolution_time(self, height: int, span_usec: int) -> None:
        """Accumulate time spent at a resolution (majority metric)."""
        self.resolution_time_usec[height] = (
            self.resolution_time_usec.get(height, 0) + span_usec
        )

    def summary(self, now: int) -> Dict[str, float]:
        """The Table-2 QoE metrics for the window ending at ``now``."""
        window = max(1, now - self.window_start)
        window_sec = window / units.USEC_PER_SEC
        majority_resolution = 0
        if self.resolution_time_usec:
            majority_resolution = max(
                self.resolution_time_usec, key=self.resolution_time_usec.get
            )
        return {
            "resolution_p": float(majority_resolution),
            "avg_fps": self.frames_rendered / window_sec,
            "freezes_per_minute": self.freezes * 60.0 / window_sec,
            "fraction_high_delay": (
                self.packets_high_delay / self.packets_total
                if self.packets_total
                else 0.0
            ),
            "jitter_ms": self._jitter_usec / 1000.0,
            "mean_rtt_ms": (
                self._delay_sum_usec / self.packets_total / 1000.0
                if self.packets_total
                else 0.0
            ),
        }


class RtcService(Service):
    """A live video call: paced frames + rate controller + QoE receiver."""

    category = "rtc"

    def __init__(
        self,
        service_id: str,
        controller,
        policy: RtcAdaptationPolicy,
        display_name: Optional[str] = None,
    ) -> None:
        super().__init__(service_id, display_name)
        self.controller = controller
        self.policy = policy
        self.qoe = RtcMetrics()

        self._frame_counter = 0
        self._packet_counter = 0
        self._frames: Dict[int, _Frame] = {}
        self._seq_to_frame: Dict[int, int] = {}
        self._last_keyframe_usec = 0
        self._current_height = 720
        self._current_fps = 30.0
        self._last_resolution_update = 0

        # Feedback-interval accumulators.
        self._fb_bytes_received = 0
        self._fb_packets_sent = 0
        self._fb_packets_lost = 0
        self._fb_delay_sum = 0.0
        self._fb_delay_samples = 0

        self._media_bytes_received = 0

    # The media flow *is* the service (duck-typed flow interface).
    @property
    def flow_id(self) -> str:
        return f"{self.service_id}-media"

    def _build(self) -> None:
        pass  # no reliable connections; packets are sent directly

    def _run(self) -> None:
        now = self.engine.now
        self.qoe.reset(now)
        self._last_resolution_update = now
        self._send_frame()
        self.schedule(FEEDBACK_PERIOD_USEC, self._feedback_tick)

    def solo_rate_cap_bps(self) -> Optional[float]:
        return self.controller.max_rate_bps

    @property
    def bytes_received(self) -> int:
        return self._media_bytes_received

    # ------------------------------------------------------------------
    # Sender: frame pacing
    # ------------------------------------------------------------------

    def _send_frame(self) -> None:
        now = self.engine.now
        rate = self.controller.target_rate_bps
        height, fps = self.policy.select(rate)
        if height != self._current_height:
            self.qoe.add_resolution_time(
                self._current_height, now - self._last_resolution_update
            )
            self._current_height = height
            self._last_resolution_update = now
        self._current_fps = fps

        frame_bits = rate / fps
        if now - self._last_keyframe_usec >= KEYFRAME_PERIOD_USEC:
            frame_bits *= KEYFRAME_FACTOR
            self._last_keyframe_usec = now
        frame_bytes = max(200, int(frame_bits / 8))

        mss = self.bell.network.mss_bytes
        npackets = max(1, -(-frame_bytes // mss))
        frame = _Frame(self._frame_counter, npackets, now)
        self._frames[self._frame_counter] = frame
        self._frame_counter += 1
        remaining = frame_bytes
        for _ in range(npackets):
            size = min(mss, max(200, remaining))
            remaining -= size
            packet = Packet(self, self._packet_counter, size, now)
            self._seq_to_frame[self._packet_counter] = frame.frame_id
            self._packet_counter += 1
            self._fb_packets_sent += 1
            self.path.transmit(packet)
        self.schedule(int(units.USEC_PER_SEC / fps), self._send_frame)

    # ------------------------------------------------------------------
    # Receiver: flow interface invoked by the bottleneck link
    # ------------------------------------------------------------------

    def on_packet_arrived(self, packet: Packet) -> None:
        """Media packet reached the client: QoE + frame accounting."""
        now = self.engine.now
        one_way = now - packet.sent_time
        rtt_equivalent = one_way + self.path.rev_delay_usec
        self.qoe.on_packet(rtt_equivalent)
        self._fb_bytes_received += packet.size_bytes
        self._fb_delay_sum += one_way
        self._fb_delay_samples += 1
        self._media_bytes_received += packet.size_bytes

        frame_id = self._seq_to_frame.pop(packet.seq, None)
        if frame_id is None:
            return
        frame = self._frames.get(frame_id)
        if frame is None:
            return
        frame.packets_received += 1
        if frame.packets_received >= frame.packets_total:
            del self._frames[frame_id]
            if not frame.dropped:
                self.qoe.on_frame_rendered(now)

    def on_packet_dropped(self, packet: Packet) -> None:
        """Tail drop: the owning frame can never render (no media rtx)."""
        self._fb_packets_lost += 1
        frame_id = self._seq_to_frame.pop(packet.seq, None)
        if frame_id is None:
            return
        frame = self._frames.get(frame_id)
        if frame is not None:
            # An incomplete frame is never rendered (no media rtx/FEC).
            frame.dropped = True
            frame.packets_received += 1
            if frame.packets_received >= frame.packets_total:
                del self._frames[frame_id]

    # ------------------------------------------------------------------
    # Feedback loop
    # ------------------------------------------------------------------

    def _feedback_tick(self) -> None:
        now = self.engine.now
        interval_sec = FEEDBACK_PERIOD_USEC / units.USEC_PER_SEC
        received_rate = self._fb_bytes_received * 8 / interval_sec
        mean_delay = (
            self._fb_delay_sum / self._fb_delay_samples
            if self._fb_delay_samples
            else 0.0
        )
        loss_fraction = (
            self._fb_packets_lost / self._fb_packets_sent
            if self._fb_packets_sent
            else 0.0
        )
        self.controller.on_feedback(now, received_rate, mean_delay, loss_fraction)
        self._fb_bytes_received = 0
        self._fb_packets_sent = 0
        self._fb_packets_lost = 0
        self._fb_delay_sum = 0.0
        self._fb_delay_samples = 0
        self.schedule(FEEDBACK_PERIOD_USEC, self._feedback_tick)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def on_measure_start(self) -> None:
        now = self.engine.now
        self.qoe.reset(now)
        self._last_resolution_update = now
        self._media_bytes_received = 0

    def metrics(self) -> Dict[str, float]:
        now = self.engine.now
        self.qoe.add_resolution_time(
            self._current_height, now - self._last_resolution_update
        )
        self._last_resolution_update = now
        summary = self.qoe.summary(now)
        summary["target_rate_bps"] = self.controller.target_rate_bps
        return summary
