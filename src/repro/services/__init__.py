"""End-to-end service models: the workloads of Table 1.

Each service couples one or more transport flows with the application
behaviour the paper documents for it - ABR ladders and playback buffers for
video, Mega's batch-of-five chunk scheduler, RTC frame sources with QoE
accounting, web page loads - because the paper's core finding is that this
application layer, not the CCA alone, decides fairness outcomes.
"""

from .base import Service
from .iperf import IperfService
from .filetransfer import FileTransferService, MegaTransferService
from .abr import BitrateLadder, ConservativeABR, BufferRateABR
from .video import VideoOnDemandService
from .rtc import RtcService, RtcMetrics
from .web import WebPageService, PageSpec, ResourceSpec
from .catalog import ServiceCatalog, ServiceSpec, default_catalog

__all__ = [
    "Service",
    "IperfService",
    "FileTransferService",
    "MegaTransferService",
    "BitrateLadder",
    "ConservativeABR",
    "BufferRateABR",
    "VideoOnDemandService",
    "RtcService",
    "RtcMetrics",
    "WebPageService",
    "PageSpec",
    "ResourceSpec",
    "ServiceCatalog",
    "ServiceSpec",
    "default_catalog",
]
