"""Web page loads: parallel fetches plus SpeedIndex-style load timing.

Section 5.2 protocol: the contender starts first; after a head start the
page is loaded in a fresh browser instance (cache and cookies wiped, so
every byte crosses the network), repeatedly, with a gap between loads.
Page load time (PLT) is the time for 95% of the above-the-fold bytes to
arrive, following Google's SpeedIndex idea; we also compute the SpeedIndex
integral itself.

A page is a set of resources spread over domains; the browser fetches the
HTML first, then fans out over up to six connections per domain - which is
how web services end up using >5 to >20 flows (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .. import units
from ..cca.base import CongestionControl
from ..transport.connection import Connection
from .base import Service

#: Chrome's per-domain connection limit.
MAX_CONNECTIONS_PER_DOMAIN = 6


@dataclass(frozen=True)
class ResourceSpec:
    """One fetchable page resource."""

    name: str
    size_bytes: int
    domain: str
    above_fold: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("resource size must be positive")


@dataclass(frozen=True)
class PageSpec:
    """A web page: an HTML root plus subresources."""

    name: str
    html: ResourceSpec
    subresources: List[ResourceSpec] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return self.html.size_bytes + sum(r.size_bytes for r in self.subresources)

    @property
    def above_fold_bytes(self) -> int:
        total = self.html.size_bytes if self.html.above_fold else 0
        return total + sum(
            r.size_bytes for r in self.subresources if r.above_fold
        )

    @property
    def domains(self) -> List[str]:
        seen = {self.html.domain: None}
        for resource in self.subresources:
            seen.setdefault(resource.domain, None)
        return list(seen)


class PageLoadResult:
    """Timing record of one page load."""

    def __init__(self, start_usec: int) -> None:
        self.start_usec = start_usec
        self.plt95_usec: Optional[int] = None
        self.complete_usec: Optional[int] = None
        self.speed_index_usec: Optional[float] = None

    @property
    def plt95_sec(self) -> Optional[float]:
        if self.plt95_usec is None:
            return None
        return self.plt95_usec / units.USEC_PER_SEC


class _PageLoad:
    """State machine for one browser page load (one fresh Chrome)."""

    def __init__(
        self,
        service: "WebPageService",
        spec: PageSpec,
        on_done: Callable[[PageLoadResult], None],
    ) -> None:
        self.service = service
        self.spec = spec
        self.on_done = on_done
        self.result = PageLoadResult(service.engine.now)
        self._above_fold_total = max(1, spec.above_fold_bytes)
        self._above_fold_received = 0
        self._outstanding = 1 + len(spec.subresources)
        self._pools: Dict[str, List[Connection]] = {}
        self._busy: Dict[str, int] = {}
        self._queues: Dict[str, List[ResourceSpec]] = {}
        self._last_completeness_change = service.engine.now
        self._speed_index_acc = 0.0
        # Fetch the HTML first; subresources fan out on completion.
        self._fetch(spec.html)

    # -- connection pooling -------------------------------------------

    def _connection_for(self, domain: str) -> Optional[Connection]:
        pool = self._pools.setdefault(domain, [])
        busy = self._busy.get(domain, 0)
        if busy < len(pool):
            return pool[busy]
        if len(pool) < MAX_CONNECTIONS_PER_DOMAIN:
            conn = self.service.new_browser_connection()
            pool.append(conn)
            return conn
        return None

    def _fetch(self, resource: ResourceSpec) -> None:
        conn = self._connection_for(resource.domain)
        if conn is None:
            self._queues.setdefault(resource.domain, []).append(resource)
            return
        self._busy[resource.domain] = self._busy.get(resource.domain, 0) + 1
        conn.request(
            resource.size_bytes,
            on_complete=lambda r=resource: self._resource_done(r),
        )

    def _resource_done(self, resource: ResourceSpec) -> None:
        now = self.service.engine.now
        self._busy[resource.domain] -= 1
        self._outstanding -= 1
        if resource.above_fold:
            before = self._above_fold_received / self._above_fold_total
            self._above_fold_received += resource.size_bytes
            after = self._above_fold_received / self._above_fold_total
            # SpeedIndex integral: area above the completeness curve.
            self._speed_index_acc += (1.0 - before) * (
                now - self._last_completeness_change
            )
            self._last_completeness_change = now
            if self.result.plt95_usec is None and after >= 0.95:
                self.result.plt95_usec = now - self.result.start_usec
        if resource is self.spec.html:
            for sub in self.spec.subresources:
                self._fetch(sub)
        else:
            queue = self._queues.get(resource.domain)
            if queue:
                self._fetch(queue.pop(0))
        if self._outstanding == 0:
            self.result.complete_usec = now - self.result.start_usec
            self.result.speed_index_usec = self._speed_index_acc
            if self.result.plt95_usec is None:
                self.result.plt95_usec = self.result.complete_usec
            self.on_done(self.result)


class WebPageService(Service):
    """Repeated page loads of one page spec, fresh browser each time."""

    category = "web"

    def __init__(
        self,
        service_id: str,
        page: PageSpec,
        cca_factory: Callable[[int], CongestionControl],
        load_gap_usec: int = units.seconds(45),
        initial_delay_usec: int = units.seconds(30),
        display_name: Optional[str] = None,
    ) -> None:
        super().__init__(service_id, display_name)
        self.page = page
        self.cca_factory = cca_factory
        self.load_gap_usec = load_gap_usec
        self.initial_delay_usec = initial_delay_usec
        self.results: List[PageLoadResult] = []
        self._flow_counter = 0
        self._active_load: Optional[_PageLoad] = None

    def new_browser_connection(self) -> Connection:
        """A fresh connection (fresh Chrome => no connection reuse)."""
        conn = self.make_connection(
            self.cca_factory(self._flow_counter), self._flow_counter
        )
        self._flow_counter += 1
        return conn

    def _build(self) -> None:
        pass  # connections are created per page load

    def _run(self) -> None:
        self.schedule(self.initial_delay_usec, self._start_load)

    def _start_load(self) -> None:
        self._active_load = _PageLoad(self, self.page, self._load_done)

    def _load_done(self, result: PageLoadResult) -> None:
        self.results.append(result)
        self._active_load = None
        self.schedule(self.load_gap_usec, self._start_load)

    def on_measure_start(self) -> None:
        self.results = []

    def plt_samples_sec(self) -> List[float]:
        """Per-load PLT-95 samples from the current window, in seconds."""
        return [
            r.plt95_sec for r in self.results if r.plt95_sec is not None
        ]

    def metrics(self) -> Dict[str, float]:
        samples = sorted(self.plt_samples_sec())
        if not samples:
            return {"page_loads": 0.0}
        mid = len(samples) // 2
        if len(samples) % 2:
            median = samples[mid]
        else:
            median = (samples[mid - 1] + samples[mid]) / 2
        return {
            "page_loads": float(len(samples)),
            "median_plt_sec": median,
            "max_plt_sec": samples[-1],
            "min_plt_sec": samples[0],
        }
