"""Packet objects carried through the simulated network."""

from __future__ import annotations

from typing import Any, Optional


class Packet:
    """A data packet in flight.

    Slots keep packet allocation cheap; an experiment at 50 Mbps moves a few
    hundred thousand of these.  The ``delivered``/``delivered_time`` pair
    carries BBR-style delivery-rate sampling state, snapshotted at send time
    (RFC draft-cheng-iccrg-delivery-rate-estimation).

    ``_in_order``/``_chain_done`` are free-list bookkeeping owned by the
    sending flow (see ``Connection``): a packet may only be recycled once
    its network/ACK event chain has completed (``_chain_done``) and no
    loss-detection structure still holds it (``_in_order``).  They are
    private to the flow's pool logic and meaningless elsewhere.
    """

    __slots__ = (
        "flow",
        "seq",
        "size_bytes",
        "sent_time",
        "tx_index",
        "is_retransmit",
        "delivered",
        "delivered_time",
        "first_sent_time",
        "is_app_limited",
        "arrival_time",
        "dequeue_time",
        "_in_order",
        "_chain_done",
    )

    def __init__(
        self,
        flow: Any,
        seq: int,
        size_bytes: int,
        sent_time: int,
        is_retransmit: bool = False,
    ) -> None:
        self.flow = flow
        self.seq = seq
        self.size_bytes = size_bytes
        self.sent_time = sent_time
        self.tx_index = 0
        self.is_retransmit = is_retransmit
        # Delivery-rate sampling snapshot, filled by the sender.
        self.delivered = 0
        self.delivered_time = 0
        self.first_sent_time = 0
        self.is_app_limited = False
        # Bottleneck bookkeeping, filled by the queue/link.
        self.arrival_time: Optional[int] = None
        self.dequeue_time: Optional[int] = None
        # Free-list bookkeeping, owned by the sending flow's pool.
        self._in_order = False
        self._chain_done = False

    @property
    def queueing_delay_usec(self) -> Optional[int]:
        """Time spent waiting in the bottleneck queue, if it was dequeued."""
        if self.arrival_time is None or self.dequeue_time is None:
            return None
        return self.dequeue_time - self.arrival_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flow_id = getattr(self.flow, "flow_id", "?")
        return (
            f"Packet(flow={flow_id}, seq={self.seq}, "
            f"size={self.size_bytes}, rtx={self.is_retransmit})"
        )
