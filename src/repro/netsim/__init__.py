"""Packet-level discrete-event network simulator.

This package is the reproduction's stand-in for the paper's BESS software
switch and wired testbed: a dumbbell topology where per-service servers
send packets through a shared, rate-limited bottleneck link with a
drop-tail FIFO queue, with per-service delay insertion to normalise RTTs.
"""

from .engine import Engine
from .packet import Packet
from .queue import DropTailQueue
from .link import BottleneckLink
from .topology import Dumbbell, Path
from .trace import PacketTrace, QueueLog

__all__ = [
    "Engine",
    "Packet",
    "DropTailQueue",
    "BottleneckLink",
    "Dumbbell",
    "Path",
    "PacketTrace",
    "QueueLog",
]
