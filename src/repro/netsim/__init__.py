"""Packet-level discrete-event network simulator.

This package is the reproduction's stand-in for the paper's BESS software
switch and wired testbed: a dumbbell topology where per-service servers
send packets through a shared, rate-limited bottleneck link with a
drop-tail FIFO queue, with per-service delay insertion to normalise RTTs.
"""

from .engine import (
    CalendarEngine,
    Engine,
    HeapEngine,
    Timer,
    build_engine,
    engine_kind_from_env,
)
from .packet import Packet
from .queue import DropTailQueue
from .link import BottleneckLink
from .topology import Dumbbell, Path
from .trace import PacketTrace, QueueLog

__all__ = [
    "CalendarEngine",
    "Engine",
    "HeapEngine",
    "Timer",
    "build_engine",
    "engine_kind_from_env",
    "Packet",
    "DropTailQueue",
    "BottleneckLink",
    "Dumbbell",
    "Path",
    "PacketTrace",
    "QueueLog",
]
