"""Drop-tail FIFO bottleneck queue with per-service accounting.

This mirrors what the paper measures at the BESS switch: arrivals, drops,
occupancy over time, and per-packet queueing delay, all attributable to the
service that sent the packet.

Hot-path note: the counters are ``defaultdict(int)`` so ``offer``/``pop``
increment them with a single C-level ``+=`` instead of a ``get``-then-store
pair, and both methods keep their per-call state in locals.  Counter dicts
still compare/serialise exactly like plain dicts, and missing services
read as zero via ``.get`` in the accessors (reads never insert keys).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Optional

from .packet import Packet
from .trace import QueueLog


class DropTailQueue:
    """Fixed-capacity (in packets) drop-tail FIFO.

    Attributes:
        capacity_packets: maximum number of queued packets; arrivals beyond
            this are dropped (tail drop).
        arrivals / drops: per-service counters keyed by ``service_id``.
    """

    __slots__ = (
        "capacity_packets",
        "_queue",
        "arrivals",
        "drops",
        "queue_delay_sum_usec",
        "queue_delay_samples",
        "log",
    )

    def __init__(
        self,
        capacity_packets: int,
        log: Optional[QueueLog] = None,
    ) -> None:
        if capacity_packets < 1:
            raise ValueError("queue capacity must be at least one packet")
        self.capacity_packets = capacity_packets
        self._queue: Deque[Packet] = deque()
        self.arrivals: Dict[str, int] = defaultdict(int)
        self.drops: Dict[str, int] = defaultdict(int)
        self.queue_delay_sum_usec: Dict[str, int] = defaultdict(int)
        self.queue_delay_samples: Dict[str, int] = defaultdict(int)
        self.log = log

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Current number of queued packets."""
        return len(self._queue)

    def offer(self, packet: Packet, now: int) -> bool:
        """Enqueue ``packet``; returns False (and counts a drop) if full."""
        service_id = packet.flow.service_id
        self.arrivals[service_id] += 1
        queue = self._queue
        if len(queue) >= self.capacity_packets:
            self.drops[service_id] += 1
            log = self.log
            if log is not None:
                log.record_drop(now, service_id)
            return False
        packet.arrival_time = now
        queue.append(packet)
        return True

    def pop(self, now: int) -> Optional[Packet]:
        """Dequeue the head packet, recording its queueing delay."""
        queue = self._queue
        if not queue:
            return None
        packet = queue.popleft()
        packet.dequeue_time = now
        service_id = packet.flow.service_id
        self.queue_delay_sum_usec[service_id] += now - packet.arrival_time
        self.queue_delay_samples[service_id] += 1
        return packet

    def loss_rate(self, service_id: str) -> float:
        """Fraction of this service's arrivals that were tail-dropped."""
        arrived = self.arrivals.get(service_id, 0)
        if arrived == 0:
            return 0.0
        return self.drops.get(service_id, 0) / arrived

    def mean_queueing_delay_usec(self, service_id: str) -> float:
        """Average queueing delay of this service's delivered packets."""
        samples = self.queue_delay_samples.get(service_id, 0)
        if samples == 0:
            return 0.0
        return self.queue_delay_sum_usec[service_id] / samples

    def reset_stats(self) -> None:
        """Clear counters (used when the measurement window opens)."""
        self.arrivals.clear()
        self.drops.clear()
        self.queue_delay_sum_usec.clear()
        self.queue_delay_samples.clear()
