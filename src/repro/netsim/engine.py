"""Discrete-event engine with an integer-microsecond clock.

Events are ``(time, sequence, callback, arg)`` 4-tuples in a binary heap;
the sequence number makes ordering of same-time events deterministic (FIFO
in scheduling order), which keeps whole simulations bit-reproducible for a
given seed.

The 4-tuple form exists for the simulator hot path: schedulers pass a
pre-existing bound method plus its argument (typically a
:class:`~repro.netsim.packet.Packet`) instead of allocating a fresh
closure per event.  At hundreds of thousands of packets per trial the
per-packet lambda allocations used to be a measurable slice of the event
loop; see DESIGN.md ("simulator hot path").
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Sentinel meaning "callback takes no argument".  Using an identity-checked
#: sentinel (rather than ``None``) lets callers schedule ``fn(None)``.
_NO_ARG = object()


class Engine:
    """A minimal, fast event loop.

    The hot path (one bottleneck-packet lifetime) schedules roughly three
    events, so this class is deliberately small: a heap, a clock, and a
    monotone sequence counter.
    """

    __slots__ = ("now", "_heap", "_seq", "_running")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Callable, Any]] = []
        self._seq = 0
        self._running = False

    def schedule(
        self, delay_usec: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` ``delay_usec`` microseconds from now.

        When ``arg`` is given the event dispatches as ``callback(arg)``;
        pass a bound method plus its operand to avoid allocating a closure
        per event on hot paths.
        """
        if delay_usec < 0:
            raise ValueError("cannot schedule into the past")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self.now + delay_usec, seq, callback, arg))

    def schedule_at(
        self, when_usec: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` at absolute time ``when_usec``."""
        if when_usec < self.now:
            raise ValueError("cannot schedule into the past")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (when_usec, seq, callback, arg))

    def run(self, until_usec: Optional[int] = None) -> None:
        """Process events until the heap drains or the clock passes ``until_usec``.

        When ``until_usec`` is given the clock is left exactly there, so
        consecutive ``run`` calls resume seamlessly.
        """
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        self._running = True
        try:
            if until_usec is None:
                while heap:
                    when, _seq, callback, arg = pop(heap)
                    self.now = when
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
            else:
                while heap:
                    if heap[0][0] > until_usec:
                        break
                    when, _seq, callback, arg = pop(heap)
                    self.now = when
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
        finally:
            self._running = False
        if until_usec is not None and self.now < until_usec:
            self.now = until_usec

    def timer(self, callback: Callable[[], None]) -> "Timer":
        """A lazy-cancellation timer handle firing ``callback`` on expiry."""
        return Timer(self, callback)

    def pending(self) -> int:
        """Number of scheduled events not yet run."""
        return len(self._heap)

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the monotone sequence counter).

        Read by post-trial instrumentation (repro.obs) as a measure of
        event-loop work; maintaining it costs nothing extra because the
        counter already exists for deterministic tie-breaking.
        """
        return self._seq


class Timer:
    """A rearmable deadline with lazy cancellation.

    Retransmission-style timers move their deadline on nearly every ACK.
    Cancelling/re-pushing a heap entry each time would churn the heap once
    per packet, so instead the timer keeps **at most one** event in the
    heap: rearming just updates :attr:`deadline`, and when the (stale)
    heap event fires early it re-schedules itself at the current deadline
    instead of invoking the callback.  ``cancel()`` simply clears the
    deadline; a pending heap event then fires as a no-op.

    Rearming never pushes a second event, even when the new deadline is
    *earlier* than the pending wakeup: the timer notices the moved
    deadline only when that wakeup fires, exactly like a kernel RTO whose
    timer wheel granularity absorbs small backward moves.  (RTO deadlines
    virtually always move forward; keeping this semantic also preserves
    bit-identical schedules with the pre-handle implementation.)
    """

    __slots__ = ("_engine", "_callback", "deadline", "_event_at")

    def __init__(self, engine: Engine, callback: Callable[[], None]) -> None:
        self._engine = engine
        self._callback = callback
        #: Absolute expiry time, or None when cancelled.
        self.deadline: Optional[int] = None
        # Time of the single in-heap event, or None when no event pending.
        self._event_at: Optional[int] = None

    @property
    def armed(self) -> bool:
        """True when the timer has a live (non-cancelled) deadline."""
        return self.deadline is not None

    def schedule_at(self, when_usec: int) -> None:
        """(Re)arm the timer to expire at absolute time ``when_usec``."""
        self.deadline = when_usec
        if self._event_at is None:
            self._event_at = when_usec
            self._engine.schedule_at(when_usec, self._fire)

    def schedule(self, delay_usec: int) -> None:
        """(Re)arm the timer to expire ``delay_usec`` from now."""
        self.schedule_at(self._engine.now + delay_usec)

    def cancel(self) -> None:
        """Disarm.  A pending heap event (if any) becomes a no-op."""
        self.deadline = None

    def _fire(self) -> None:
        self._event_at = None
        deadline = self.deadline
        if deadline is None:
            return
        if self._engine.now < deadline:
            # Superseded: the deadline moved while this event sat in the
            # heap.  Chase the current deadline with one fresh event.
            self._event_at = deadline
            self._engine.schedule_at(deadline, self._fire)
            return
        self.deadline = None
        self._callback()
