"""Discrete-event engine with an integer-microsecond clock.

Events are ``(time, sequence, callback)`` triples in a binary heap; the
sequence number makes ordering of same-time events deterministic (FIFO in
scheduling order), which keeps whole simulations bit-reproducible for a
given seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Engine:
    """A minimal, fast event loop.

    The hot path (one bottleneck-packet lifetime) schedules roughly three
    events, so this class is deliberately small: a heap, a clock, and a
    monotone sequence counter.
    """

    __slots__ = ("now", "_heap", "_seq", "_running")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False

    def schedule(self, delay_usec: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay_usec`` microseconds from now."""
        if delay_usec < 0:
            raise ValueError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay_usec, self._seq, callback))

    def schedule_at(self, when_usec: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when_usec``."""
        if when_usec < self.now:
            raise ValueError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._heap, (when_usec, self._seq, callback))

    def run(self, until_usec: Optional[int] = None) -> None:
        """Process events until the heap drains or the clock passes ``until_usec``.

        When ``until_usec`` is given the clock is left exactly there, so
        consecutive ``run`` calls resume seamlessly.
        """
        heap = self._heap
        self._running = True
        try:
            while heap:
                when, _seq, callback = heap[0]
                if until_usec is not None and when > until_usec:
                    break
                heapq.heappop(heap)
                self.now = when
                callback()
        finally:
            self._running = False
        if until_usec is not None and self.now < until_usec:
            self.now = until_usec

    def pending(self) -> int:
        """Number of scheduled events not yet run."""
        return len(self._heap)
