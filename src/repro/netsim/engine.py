"""Discrete-event engine with an integer-microsecond clock.

Events are ``(time, sequence, callback, arg)`` 4-tuples; the sequence
number makes ordering of same-time events deterministic (FIFO in
scheduling order), which keeps whole simulations bit-reproducible for a
given seed.

Two interchangeable scheduler cores implement the same public API and the
same total dispatch order ``(time, seq)``:

* :class:`HeapEngine` - the original binary heap (``heapq``).  Kept as
  the dispatch-order oracle: simple, obviously correct, O(log n) per op.
* :class:`CalendarEngine` - a calendar queue (rotating array of time
  buckets, per-day sorted dispatch, overflow list for far-future events,
  adaptive bucket width).  O(1) amortized per op; the default.

:func:`build_engine` selects between them (``REPRO_ENGINE=heap|calendar``)
and is the seam every simulation construction path goes through; see
DESIGN.md ("Event scheduler").

The 4-tuple form exists for the simulator hot path: schedulers pass a
pre-existing bound method plus its argument (typically a
:class:`~repro.netsim.packet.Packet`) instead of allocating a fresh
closure per event.  At hundreds of thousands of packets per trial the
per-packet lambda allocations used to be a measurable slice of the event
loop; see DESIGN.md ("simulator hot path").
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from math import log2
from typing import Any, Callable, List, Optional, Tuple

#: Sentinel meaning "callback takes no argument".  Using an identity-checked
#: sentinel (rather than ``None``) lets callers schedule ``fn(None)``.
_NO_ARG = object()

#: Public alias for callers (e.g. ``Service.schedule``) that forward the
#: optional-arg form without wanting to import an underscored name.
NO_ARG = _NO_ARG


class HeapEngine:
    """The original binary-heap event loop (dispatch-order oracle).

    The hot path (one bottleneck-packet lifetime) schedules roughly four
    events, so this class is deliberately small: a heap, a clock, and a
    monotone sequence counter.
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "_stale")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Tuple[int, int, Callable, Any]] = []
        self._seq = 0
        self._running = False
        #: In-structure events that are no longer dispatchable work: a
        #: lazily-cancelled Timer's wakeup stays in the heap as a no-op
        #: until it drains.  ``pending()`` subtracts these.
        self._stale = 0

    def schedule(
        self, delay_usec: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` ``delay_usec`` microseconds from now.

        When ``arg`` is given the event dispatches as ``callback(arg)``;
        pass a bound method plus its operand to avoid allocating a closure
        per event on hot paths.
        """
        if delay_usec < 0:
            raise ValueError("cannot schedule into the past")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (self.now + delay_usec, seq, callback, arg))

    def schedule_at(
        self, when_usec: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` at absolute time ``when_usec``."""
        if when_usec < self.now:
            raise ValueError("cannot schedule into the past")
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (when_usec, seq, callback, arg))

    def run(self, until_usec: Optional[int] = None) -> None:
        """Process events until the heap drains or the clock passes ``until_usec``.

        When ``until_usec`` is given the clock is left exactly there, so
        consecutive ``run`` calls resume seamlessly.
        """
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        self._running = True
        try:
            if until_usec is None:
                while heap:
                    when, _seq, callback, arg = pop(heap)
                    self.now = when
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
            else:
                while heap:
                    if heap[0][0] > until_usec:
                        break
                    when, _seq, callback, arg = pop(heap)
                    self.now = when
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
        finally:
            self._running = False
        if until_usec is not None and self.now < until_usec:
            self.now = until_usec

    def timer(self, callback: Callable[[], None]) -> "Timer":
        """A lazy-cancellation timer handle firing ``callback`` on expiry."""
        return Timer(self, callback)

    def pending(self) -> int:
        """Number of scheduled events that still represent dispatchable work.

        Lazily-cancelled :class:`Timer` wakeups sit in the heap until they
        drain as no-ops; they are *not* pending work and are excluded here
        (each live Timer contributes exactly one event - the
        one-event-per-Timer invariant - and that event counts only while
        the timer is armed).
        """
        return len(self._heap) - self._stale

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the monotone sequence counter).

        Read by post-trial instrumentation (repro.obs) as a measure of
        event-loop work; maintaining it costs nothing extra because the
        counter already exists for deterministic tie-breaking.
        """
        return self._seq


class CalendarEngine:
    """Calendar-queue event loop: O(1) amortized schedule and dispatch.

    Layout: ``nbuckets`` (power of two) rotating time buckets of width
    ``1 << shift`` microseconds each - one bucket is one "day", a full
    sweep of the array one "year".  An event lands in the bucket of its
    day when its time is inside the current year (``when < horizon``);
    far-future events (idle RTO deadlines) wait in a small overflow heap
    and are re-bucketed as the horizon advances day by day, so each
    bucket only ever holds events due on its next visit.

    Dispatch sorts the day's bucket ascending once and walks it by index,
    so per-event work is O(1) with no heap sift; the sort is Timsort over
    the handful of near-sorted per-day events.  Sorting by the full
    ``(time, seq, ...)`` tuple is exactly the heap's comparison key,
    which is why per-day FIFO insertion plus one sort reproduces the
    heap's dispatch order - including the seq tie-break for same-time
    events - bit for bit.  Callbacks that schedule back into the
    *currently dispatching* day (pacing wakeups and ACK-clocked sends
    commonly do) ``bisect.insort`` into the live bucket's unconsumed
    tail, which keeps the order exact at C speed.

    The bucket width adapts to the observed inter-event spacing: once per
    rotation the engine re-derives the width that puts
    ``~TARGET_PER_DAY`` events in a day, so both the 8 Mbps regime
    (sparse, millisecond spacing) and the 50 Mbps regime (dense, hundreds
    of events per millisecond) stay O(1) amortized.  Resizing rebuckets
    in O(pending) and cannot change dispatch order, which depends only on
    ``(time, seq)``.
    """

    __slots__ = (
        "now",
        "_seq",
        "_running",
        "_stale",
        "_shift",
        "_nbuckets",
        "_mask",
        "_buckets",
        "_overflow",
        "_day",
        "_day_end",
        "_horizon",
        "_active_i",
        "_rotation_dispatched",
        "_rotation_busy_days",
        "_suggest_dir",
        "_resizes",
    )

    #: Bucket-count exponent: 256 buckets balances rotation bookkeeping
    #: against horizon span (at the default width, a 65 ms year).
    NBUCKETS_LOG2 = 8
    #: Initial bucket width exponent: 256 us, sized for the 50 Mbps
    #: regime (~3-4 events per day); the adaptive resize takes it from
    #: there for other regimes.
    INITIAL_SHIFT = 8
    #: Bounds for the adaptive width (16 us .. 65.5 ms).
    MIN_SHIFT = 4
    MAX_SHIFT = 16
    #: Events per *busy* day the resize policy aims for.  Small enough
    #: that the per-day sort stays trivial, large enough to amortize the
    #: per-day bookkeeping (bucket fetch, horizon advance, overflow probe).
    TARGET_PER_DAY = 4
    #: A day opening with this many events means the bucket width is at
    #: least ~4 shift steps too wide (e.g. a quiet-period upshift met a
    #: traffic burst): narrow immediately at day close rather than
    #: waiting out the rest of a - now very long - rotation.
    OVERFULL_PER_DAY = 64

    def __init__(self, shift: Optional[int] = None) -> None:
        self.now: int = 0
        self._seq = 0
        self._running = False
        self._stale = 0
        self._shift = self.INITIAL_SHIFT if shift is None else shift
        self._nbuckets = 1 << self.NBUCKETS_LOG2
        self._mask = self._nbuckets - 1
        self._buckets: List[List[Tuple[int, int, Callable, Any]]] = [
            [] for _ in range(self._nbuckets)
        ]
        # Far-future events, a (time, seq, cb, arg) heap.
        self._overflow: List[Tuple[int, int, Callable, Any]] = []
        self._day = 0
        # End of the day currently being dispatched, or 0 when the engine
        # is not inside a day (0 can never be a live day end because
        # day ends are strictly positive).  schedule() uses this to
        # divert same-day inserts into the live, sorted bucket.
        self._day_end = 0
        self._horizon = self._nbuckets << self._shift
        # Number of already-dispatched events still physically sitting at
        # the head of the live day bucket (consumed prefix); 0 whenever
        # the engine is not inside a day.
        self._active_i = 0
        self._rotation_dispatched = 0
        self._rotation_busy_days = 0
        # Pending +/-1 resize suggestion awaiting a second consecutive
        # rotation that agrees (single-step moves are damped; see
        # _maybe_resize).
        self._suggest_dir = 0
        #: Resize count, exposed for tests/instrumentation.
        self._resizes = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay_usec: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` ``delay_usec`` microseconds from now.

        When ``arg`` is given the event dispatches as ``callback(arg)``;
        pass a bound method plus its operand to avoid allocating a closure
        per event on hot paths.
        """
        if delay_usec < 0:
            raise ValueError("cannot schedule into the past")
        self._seq = seq = self._seq + 1
        when = self.now + delay_usec
        if when < self._day_end:
            # Into the live, ascending-sorted day bucket.  The fresh
            # event carries the largest seq so far, so among equal times
            # insort places it after every already-scheduled event -
            # exactly the heap's FIFO tie-break - and the consumed prefix
            # compares smaller than any schedulable event, so no ``lo``
            # bound is needed.
            insort(
                self._buckets[self._day & self._mask],
                (when, seq, callback, arg),
            )
        elif when < self._horizon:
            self._buckets[(when >> self._shift) & self._mask].append(
                (when, seq, callback, arg)
            )
        else:
            heapq.heappush(self._overflow, (when, seq, callback, arg))

    def schedule_at(
        self, when_usec: int, callback: Callable, arg: Any = _NO_ARG
    ) -> None:
        """Run ``callback`` at absolute time ``when_usec``."""
        if when_usec < self.now:
            raise ValueError("cannot schedule into the past")
        self._seq = seq = self._seq + 1
        if when_usec < self._day_end:
            # See schedule(): ordered insert into the live day bucket.
            insort(
                self._buckets[self._day & self._mask],
                (when_usec, seq, callback, arg),
            )
        elif when_usec < self._horizon:
            self._buckets[(when_usec >> self._shift) & self._mask].append(
                (when_usec, seq, callback, arg)
            )
        else:
            heapq.heappush(self._overflow, (when_usec, seq, callback, arg))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def run(self, until_usec: Optional[int] = None) -> None:
        """Process events until none remain or the clock passes ``until_usec``.

        When ``until_usec`` is given the clock is left exactly there, so
        consecutive ``run`` calls resume seamlessly - including resuming
        exactly at a bucket boundary.
        """
        if self._running:
            raise RuntimeError("engine.run is not reentrant")
        self._running = True
        try:
            self._run(until_usec)
        finally:
            self._running = False
            self._day_end = 0
            self._active_i = 0
        if until_usec is not None and self.now < until_usec:
            self.now = until_usec

    def _run(self, until_usec: Optional[int]) -> None:
        # ``day``/``horizon`` are hoisted into locals and written back to
        # the instance only at sync points (day open, every return, and
        # overflow-geometry changes).  That is sound because user code -
        # the only reader of self._day/_horizon, via schedule() - can
        # only run inside a dispatch callback, i.e. after a day-open
        # sync; the empty-day sweep is pure engine code.
        no_arg = _NO_ARG
        buckets = self._buckets
        mask = self._mask
        nbuckets = self._nbuckets
        shift = self._shift
        width = 1 << shift
        overflow = self._overflow
        pop_overflow = heapq.heappop
        overfull = self.OVERFULL_PER_DAY
        # The clock may have been advanced past the cursor by an idle
        # run(until); in that case every earlier day is known empty.
        day = self._day
        clock_day = self.now >> shift
        if clock_day > day:
            day = clock_day
        horizon = (day + nbuckets) << shift
        while overflow and overflow[0][0] < horizon:
            event = pop_overflow(overflow)
            buckets[(event[0] >> shift) & mask].append(event)
        # Days strictly before this never need a per-event until check.
        boundary_day = -1 if until_usec is None else until_usec >> shift
        empty_days = 0
        while True:
            lst = buckets[day & mask]
            if lst:
                empty_days = 0
                lst.sort()
                # Open the day: sync the cursor and divert same-day
                # inserts into lst's unconsumed tail via _day_end.
                self._day = day
                self._horizon = horizon
                self._day_end = (day + 1) << shift
                if day != boundary_day:
                    # CPython list iteration is index-based, so events
                    # insorted into the unconsumed tail by callbacks are
                    # picked up by this same loop (an insort can never
                    # land before the cursor: fresh events carry the max
                    # seq and a time >= now).  No per-event bookkeeping:
                    # this is the hot loop.
                    for when, _seq, callback, arg in lst:
                        self.now = when
                        if arg is no_arg:
                            callback()
                        else:
                            callback(arg)
                    self._day_end = 0
                    n = len(lst)
                    self._rotation_dispatched += n
                    self._rotation_busy_days += 1
                    lst.clear()
                    if n >= overfull:
                        # This width crams >= ~4 shift steps too many
                        # events into one day: narrow now, then revisit
                        # the (re-derived) current day.
                        self._force_narrow(n)
                        shift = self._shift
                        width = 1 << shift
                        day = self._day
                        horizon = self._horizon
                        boundary_day = (
                            -1 if until_usec is None else until_usec >> shift
                        )
                        continue
                else:
                    # The run(until) boundary day (at most one per run
                    # call): walk by index so the consumed prefix is
                    # known if the until check stops us mid-bucket.
                    i = 0
                    while i < len(lst):
                        event = lst[i]
                        when = event[0]
                        if when > until_usec:
                            break
                        i += 1
                        self._active_i = i
                        self.now = when
                        arg = event[3]
                        if arg is no_arg:
                            event[2]()
                        else:
                            event[2](arg)
                    self._day_end = 0
                    self._rotation_dispatched += i
                    if i:
                        self._rotation_busy_days += 1
                    self._active_i = 0
                    if i < len(lst):
                        # Partial boundary day: drop the consumed prefix,
                        # park the cursor here for the next run().
                        del lst[:i]
                        return
                    lst.clear()
            else:
                empty_days += 1
            if day == boundary_day:
                self._day = day
                self._horizon = horizon
                return
            # Advance one day: the just-vacated bucket becomes the far
            # edge of the new year, so overflow events that now fit
            # rebucket into it (amortized O(1): each day uncovers one
            # bucket-width of new horizon).
            day += 1
            horizon += width
            if empty_days <= nbuckets:
                if overflow and overflow[0][0] < horizon:
                    while overflow and overflow[0][0] < horizon:
                        event = pop_overflow(overflow)
                        buckets[(event[0] >> shift) & mask].append(event)
                    empty_days = 0
            elif not overflow:
                # A full silent rotation with nothing waiting anywhere:
                # the wheel is provably empty.
                self._day = day
                self._horizon = horizon
                return
            else:
                # Wheel empty but far-future work exists: jump the cursor
                # straight to the overflow minimum's day (or stop at the
                # boundary if that comes first).
                target_day = overflow[0][0] >> shift
                if until_usec is not None and target_day > boundary_day:
                    self._day = day
                    self._horizon = horizon
                    return
                day = target_day
                horizon = (day + nbuckets) << shift
                while overflow and overflow[0][0] < horizon:
                    event = pop_overflow(overflow)
                    buckets[(event[0] >> shift) & mask].append(event)
                empty_days = 0
            if (day & mask) == 0:
                self._day = day
                self._horizon = horizon
                if self._maybe_resize():
                    # Bucket geometry changed: reload every hoisted local.
                    shift = self._shift
                    width = 1 << shift
                    day = self._day
                    horizon = self._horizon
                    boundary_day = (
                        -1 if until_usec is None else until_usec >> shift
                    )
                    empty_days = 0

    # ------------------------------------------------------------------
    # Adaptive bucket width
    # ------------------------------------------------------------------

    def _maybe_resize(self) -> bool:
        """Once-per-rotation width adaptation; returns True on resize.

        Keyed off the rotation's mean *busy-day* occupancy: the ideal
        width puts ``TARGET_PER_DAY`` events in each non-empty day, so
        the suggested move is ``round(log2(target / mean_busy))``.
        Counting only busy days makes the estimate immune to idle gaps
        (BBR's PROBE_RTT quiescence, pre-start jitter): a mostly-idle
        rotation whose busy days are already at target suggests no move,
        where a raw span-over-dispatched spacing estimate would balloon
        the width and then meet the next traffic burst 4+ shifts too
        wide.  Single-step moves additionally need two consecutive
        rotations to agree (``_suggest_dir``), damping boundary
        ping-pong; multi-step moves apply immediately.
        """
        dispatched = self._rotation_dispatched
        busy_days = self._rotation_busy_days
        self._rotation_dispatched = 0
        self._rotation_busy_days = 0
        if not dispatched:
            self._suggest_dir = 0
            return False
        delta = round(log2(self.TARGET_PER_DAY * busy_days / dispatched))
        if delta == 0:
            self._suggest_dir = 0
            return False
        if -2 < delta < 2 and delta != self._suggest_dir:
            self._suggest_dir = delta
            return False
        self._suggest_dir = 0
        new_shift = self._shift + delta
        if new_shift < self.MIN_SHIFT:
            new_shift = self.MIN_SHIFT
        elif new_shift > self.MAX_SHIFT:
            new_shift = self.MAX_SHIFT
        if new_shift == self._shift:
            return False
        self._rebucket(new_shift)
        return True

    def _force_narrow(self, day_count: int) -> None:
        """Immediate downshift after an overfull day (see OVERFULL_PER_DAY).

        Sized so the observed day would have held ``~TARGET_PER_DAY``
        events: ``day_count / TARGET_PER_DAY`` is the over-width factor,
        its log2 the number of shift steps to drop.
        """
        delta = (day_count // self.TARGET_PER_DAY).bit_length() - 1
        new_shift = self._shift - delta
        if new_shift < self.MIN_SHIFT:
            new_shift = self.MIN_SHIFT
        self._suggest_dir = 0
        self._rotation_dispatched = 0
        self._rotation_busy_days = 0
        if new_shift != self._shift:
            self._rebucket(new_shift)

    def _rebucket(self, new_shift: int) -> None:
        """Redistribute every pending event under a new bucket width.

        O(pending).  Dispatch order is unaffected: placement never feeds
        ordering, only ``(time, seq)`` does.
        """
        events = [event for bucket in self._buckets for event in bucket]
        events.extend(self._overflow)
        for bucket in self._buckets:
            bucket.clear()
        # Mutate in place: _run holds the overflow list in a local, so
        # rebinding self._overflow here would leave that alias pointing
        # at a stale list whose events were just redistributed (they
        # would drain into buckets a second time - double dispatch).
        overflow = self._overflow
        overflow.clear()
        self._shift = new_shift
        day = self.now >> new_shift
        self._day = day
        self._horizon = horizon = (day + self._nbuckets) << new_shift
        buckets = self._buckets
        mask = self._mask
        for event in events:
            if event[0] < horizon:
                buckets[(event[0] >> new_shift) & mask].append(event)
            else:
                overflow.append(event)
        heapq.heapify(overflow)
        self._resizes += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def timer(self, callback: Callable[[], None]) -> "Timer":
        """A lazy-cancellation timer handle firing ``callback`` on expiry."""
        return Timer(self, callback)

    def pending(self) -> int:
        """Number of scheduled events that still represent dispatchable work.

        Computed on demand (this is introspection, not the hot path) as
        everything still sitting in the wheel plus the overflow, minus
        lazily-cancelled Timer wakeups - the same accounting as
        :meth:`HeapEngine.pending`.  Exact whenever called outside a
        dispatch callback (every caller in the tree).  From *inside* a
        callback the hot loop leaves consumed events in the live bucket
        until the day closes, so the count can transiently include up to
        one day's already-dispatched events; the boundary day of a
        ``run(until)`` tracks its consumed prefix (``_active_i``) so the
        count is exact again the moment ``run`` returns.
        """
        live = sum(map(len, self._buckets)) + len(self._overflow)
        return live - self._active_i - self._stale

    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled (the monotone sequence counter)."""
        return self._seq


#: Engine kinds selectable via ``REPRO_ENGINE`` / :func:`build_engine`.
ENGINE_KINDS = {
    "heap": HeapEngine,
    "calendar": CalendarEngine,
}

#: The default scheduler core.
DEFAULT_ENGINE_KIND = "calendar"


def engine_kind_from_env() -> str:
    """The engine kind selected by ``REPRO_ENGINE`` (default calendar)."""
    kind = os.environ.get("REPRO_ENGINE", DEFAULT_ENGINE_KIND).strip().lower()
    if kind not in ENGINE_KINDS:
        raise ValueError(
            f"REPRO_ENGINE={kind!r}: expected one of {sorted(ENGINE_KINDS)}"
        )
    return kind


def build_engine(kind: Optional[str] = None):
    """Construct an event engine.

    ``kind`` is ``"heap"`` or ``"calendar"``; when omitted the
    ``REPRO_ENGINE`` environment variable decides (default
    ``"calendar"``).  Every simulation construction path
    (:class:`~repro.netsim.topology.Dumbbell`, and through it
    ``run_trial_artifacts``) funnels through here, so one env var flips
    the whole system between the calendar queue and the heap oracle.
    """
    return ENGINE_KINDS[kind or engine_kind_from_env()]()


#: Backwards-compatible name: the default engine class.  Code that needs
#: runtime selection should call :func:`build_engine` instead.
Engine = CalendarEngine


class Timer:
    """A rearmable deadline with lazy cancellation.

    Retransmission-style timers move their deadline on nearly every ACK.
    Cancelling/re-pushing a scheduler entry each time would churn the
    scheduler once per packet, so instead the timer keeps **at most one**
    event in the engine (the one-event-per-Timer invariant): rearming
    just updates :attr:`deadline`, and when the (stale) event fires early
    it re-schedules itself at the current deadline instead of invoking
    the callback.  ``cancel()`` simply clears the deadline; a pending
    event then fires as a no-op.  The engine's ``_stale`` counter tracks
    exactly these no-op-to-be events so ``pending()`` can report
    dispatchable work rather than raw structure occupancy.

    Rearming never pushes a second event, even when the new deadline is
    *earlier* than the pending wakeup: the timer notices the moved
    deadline only when that wakeup fires, exactly like a kernel RTO whose
    timer wheel granularity absorbs small backward moves.  (RTO deadlines
    virtually always move forward; keeping this semantic also preserves
    bit-identical schedules with the pre-handle implementation.)

    Works against either engine kind - it only uses ``schedule_at``,
    ``now``, and the ``_stale`` counter.
    """

    __slots__ = ("_engine", "_callback", "deadline", "_event_at")

    def __init__(self, engine, callback: Callable[[], None]) -> None:
        self._engine = engine
        self._callback = callback
        #: Absolute expiry time, or None when cancelled.
        self.deadline: Optional[int] = None
        # Time of the single in-engine event, or None when no event pending.
        self._event_at: Optional[int] = None

    @property
    def armed(self) -> bool:
        """True when the timer has a live (non-cancelled) deadline."""
        return self.deadline is not None

    def schedule_at(self, when_usec: int) -> None:
        """(Re)arm the timer to expire at absolute time ``when_usec``."""
        if self.deadline is None and self._event_at is not None:
            # Reviving a cancelled timer whose stale wakeup is still in
            # the engine: that event becomes live work again.
            self._engine._stale -= 1
        self.deadline = when_usec
        if self._event_at is None:
            self._event_at = when_usec
            self._engine.schedule_at(when_usec, self._fire)

    def schedule(self, delay_usec: int) -> None:
        """(Re)arm the timer to expire ``delay_usec`` from now."""
        self.schedule_at(self._engine.now + delay_usec)

    def cancel(self) -> None:
        """Disarm.  A pending engine event (if any) becomes a no-op."""
        if self.deadline is not None and self._event_at is not None:
            self._engine._stale += 1
        self.deadline = None

    def _fire(self) -> None:
        self._event_at = None
        deadline = self.deadline
        if deadline is None:
            # Cancelled: this wakeup was counted stale; it just drained.
            self._engine._stale -= 1
            return
        if self._engine.now < deadline:
            # Superseded: the deadline moved while this event sat in the
            # engine.  Chase the current deadline with one fresh event.
            self._event_at = deadline
            self._engine.schedule_at(deadline, self._fire)
            return
        self.deadline = None
        self._callback()
