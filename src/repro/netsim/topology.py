"""Dumbbell topology: per-service servers, one shared bottleneck, one client.

Figure 1 of the paper: two (or more) services send to clients through the
BESS switch, which is the only constrained element.  RTT normalisation is
done here: every service declares its *native* RTT (<= the 50 ms target) and
the topology inserts the difference as extra propagation delay, exactly as
the paper does at the switch.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Optional

from .. import units
from ..config import NetworkConfig
from .engine import _NO_ARG, build_engine
from .link import BottleneckLink
from .packet import Packet
from .queue import DropTailQueue
from .trace import PacketTrace, QueueLog


class Path:
    """One service's path: server -> switch -> client, plus reverse path.

    The forward direction is the only congested one (downloads); requests
    and ACKs ride the uncongested reverse path as pure delays.
    """

    __slots__ = (
        "engine",
        "link",
        "pre_delay_usec",
        "rev_delay_usec",
        "external_loss_rate",
        "external_losses",
        "external_arrivals",
        "_rng",
        "_rng_random",
        "_link_send",
        "_ack_dither_scale",
    )

    def __init__(
        self,
        engine: Engine,
        link: BottleneckLink,
        pre_delay_usec: int,
        rev_delay_usec: int,
        external_loss_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.engine = engine
        self.link = link
        self.pre_delay_usec = pre_delay_usec
        self.rev_delay_usec = rev_delay_usec
        self.external_loss_rate = external_loss_rate
        self.external_losses = 0
        self.external_arrivals = 0
        self._rng = rng or random.Random(0)
        # Hot-path caches: the per-packet dither scale is a pure function
        # of the (fixed) link rate, and the bound methods below are looked
        # up once instead of once per packet/ACK.
        self._rng_random = self._rng.random
        self._link_send = link.send
        self._ack_dither_scale = units.serialization_time_usec(
            units.MSS_BYTES, link.rate_bps
        )

    @property
    def base_rtt_usec(self) -> int:
        """Propagation RTT excluding serialisation and queueing."""
        return self.pre_delay_usec + self.link.post_delay_usec + self.rev_delay_usec

    def transmit(self, packet: Packet) -> None:
        """Send a data packet from the server towards the client."""
        self.external_arrivals += 1
        if (
            self.external_loss_rate > 0.0
            and self._rng.random() < self.external_loss_rate
        ):
            # Lost upstream of the testbed: silently vanishes (the flow's
            # loss detection will notice the gap).
            self.external_losses += 1
            return
        self.engine.schedule(self.pre_delay_usec, self._link_send, packet)

    def send_reverse(self, callback, arg=_NO_ARG) -> int:
        """Deliver an ACK/request to the server after the reverse delay.

        A random dither of up to one packet service time is added.  This
        is the classic fix for drop-tail *phase effects* (Floyd &
        Jacobson): without it, deterministic ACK clocking phase-locks a
        flow's arrivals to queue-overflow instants and produces wildly
        biased loss synchronisation.  The dither never exceeds the ACK
        spacing, so same-flow reordering stays within the dupthresh.

        ``arg``, when given, is forwarded to the engine's 4-tuple event
        form so hot callers (per-packet ACKs) need no closure.
        """
        dither = int(self._rng_random() * self._ack_dither_scale)
        delay = self.rev_delay_usec + dither
        self.engine.schedule(delay, callback, arg)
        return self.engine.now + delay

    def send_reverse_ordered(
        self, callback, not_before_usec: int = 0
    ) -> int:
        """Reverse delivery that never overtakes an earlier one.

        Application *requests* ride an ordered byte stream in reality, so
        unlike ACK dithering they must stay FIFO; callers thread the
        returned arrival time into the next call's ``not_before_usec``.
        """
        dither = int(self._rng_random() * self._ack_dither_scale)
        arrival = max(
            self.engine.now + self.rev_delay_usec + dither, not_before_usec
        )
        self.engine.schedule_at(arrival, callback)
        return arrival

    @property
    def external_loss_fraction(self) -> float:
        if self.external_arrivals == 0:
            return 0.0
        return self.external_losses / self.external_arrivals


class Dumbbell:
    """The full emulated testbed for one experiment.

    Construction wires up the queue (power-of-two sized per the BESS
    quirk), the bottleneck link, a queue log, and an optional packet trace.
    Services then request paths via :meth:`path_for_service`.
    """

    #: Portion of the forward one-way delay placed downstream of the switch.
    POST_DELAY_USEC = units.msec(1)

    def __init__(
        self,
        network: NetworkConfig,
        seed: int = 0,
        trace_packets: bool = False,
        queue_log_period_usec: int = 10_000,
        engine=None,
    ) -> None:
        self.network = network
        # The engine seam: callers (tests, the differential harness) may
        # inject a specific scheduler core; everyone else gets the
        # REPRO_ENGINE-selected default.
        self.engine = engine if engine is not None else build_engine()
        self.queue_log = QueueLog(sample_period_usec=queue_log_period_usec)
        self.trace = PacketTrace(enabled=trace_packets)
        self.queue = DropTailQueue(network.queue_packets, log=self.queue_log)
        self.link = BottleneckLink(
            self.engine,
            rate_bps=network.bandwidth_bps,
            queue=self.queue,
            post_delay_usec=self.POST_DELAY_USEC,
            trace=self.trace,
        )
        self._seed = seed
        self._paths: Dict[str, Path] = {}

    def rng_for(self, label: str) -> random.Random:
        """A deterministic per-component RNG stream.

        Uses crc32 rather than ``hash`` so streams are stable across
        processes (str hashing is randomised per interpreter run).
        """
        digest = zlib.crc32(f"{self._seed}:{label}".encode("utf-8"))
        return random.Random(digest)

    def path_for_service(
        self, service_id: str, native_rtt_usec: Optional[int] = None
    ) -> Path:
        """Create (or fetch) the RTT-normalised path for a service.

        ``native_rtt_usec`` is the service's RTT before normalisation; the
        topology inserts ``target - native`` extra delay.  Services with a
        native RTT above the target raise, mirroring the paper's note that
        delay can only be added, never removed.
        """
        if service_id in self._paths:
            return self._paths[service_id]
        target = self.network.base_rtt_usec
        native = native_rtt_usec if native_rtt_usec is not None else target
        if not self.network.normalize_rtt:
            # Vantage-point mode (Section 9): no delay insertion; services
            # keep their native RTT.  Services that never measured one get
            # a seeded draw from the paper's observed 10-40 ms range.
            if native_rtt_usec is None:
                native = units.msec(
                    self.rng_for(f"native-rtt:{service_id}").uniform(10, 40)
                )
            target = native
        elif native > target:
            raise ValueError(
                f"service {service_id!r} native RTT {native}us exceeds the "
                f"{target}us normalisation target; delay cannot be removed"
            )
        # Split the forward/reverse delay so the propagation RTT equals the
        # target: fixed 1 ms after the switch, the rest split between the
        # server->switch hop and the reverse path.  A small seeded jitter
        # (<1%) models the residual RTT variation the live testbed sees
        # even after normalisation, and decorrelates repeated trials.
        jitter = self.rng_for(f"rtt:{service_id}").uniform(-0.008, 0.008)
        remaining = int((target - self.POST_DELAY_USEC) * (1.0 + jitter))
        pre = remaining // 2
        rev = remaining - pre
        path = Path(
            self.engine,
            self.link,
            pre_delay_usec=pre,
            rev_delay_usec=rev,
            external_loss_rate=self.network.external_loss_rate,
            rng=self.rng_for(f"path:{service_id}"),
        )
        self._paths[service_id] = path
        return path

    @property
    def paths(self) -> Dict[str, Path]:
        return dict(self._paths)

    def external_loss_fraction(self) -> float:
        """Aggregate external (upstream) loss across all services' paths."""
        arrivals = sum(p.external_arrivals for p in self._paths.values())
        losses = sum(p.external_losses for p in self._paths.values())
        return losses / arrivals if arrivals else 0.0

    def run(self, until_usec: int) -> None:
        """Advance the simulation to the given absolute time."""
        self.engine.run(until_usec)
