"""Experiment artifacts: queue logs and per-packet traces.

The Prudentia website publishes "bottleneck queue logs and client PCAPs for
every experiment"; these classes are the in-simulator equivalents.  Both are
plain columnar records that serialise to JSON for the result store.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class QueueLog:
    """Sampled bottleneck-queue occupancy plus drop events.

    Occupancy is sampled on a fixed period (default 10 ms) by the link's
    serialiser loop; this keeps the log size bounded regardless of packet
    rate while still resolving the burst/drain dynamics shown in Fig 8.
    """

    def __init__(self, sample_period_usec: int = 10_000) -> None:
        if sample_period_usec < 1:
            raise ValueError("sample period must be positive")
        self.sample_period_usec = sample_period_usec
        self.samples: List[Tuple[int, int]] = []
        self.drop_events: List[Tuple[int, str]] = []
        self._next_sample_usec = 0

    def maybe_sample(self, now: int, occupancy: int) -> None:
        """Record occupancy if the sampling period has elapsed."""
        if now >= self._next_sample_usec:
            self.samples.append((now, occupancy))
            self._next_sample_usec = now + self.sample_period_usec

    def record_drop(self, now: int, service_id: str) -> None:
        """Log one tail-drop event."""
        self.drop_events.append((now, service_id))

    def occupancy_series(self) -> Tuple[List[int], List[int]]:
        """(times_usec, occupancy) columns for plotting."""
        if not self.samples:
            return [], []
        times, occs = zip(*self.samples)
        return list(times), list(occs)

    def to_json(self) -> Dict:
        """Serialise the log for artifact publication."""
        return {
            "sample_period_usec": self.sample_period_usec,
            "samples": self.samples,
            "drop_events": self.drop_events,
        }


class PacketTrace:
    """Per-packet delivery records for one experiment ("client PCAP").

    Recording every packet is expensive, so traces are opt-in (enabled for
    the time-series figures and for artifact publication, disabled for bulk
    heatmap sweeps).  Each record is
    ``(deliver_time_usec, service_id, size_bytes)``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.records: List[Tuple[int, str, int]] = []

    def record(self, now: int, service_id: str, size_bytes: int) -> None:
        """Record one delivered packet (no-op when disabled)."""
        if self.enabled:
            self.records.append((now, service_id, size_bytes))

    def throughput_series(
        self,
        service_id: str,
        bin_usec: int = 1_000_000,
        start_usec: int = 0,
        end_usec: Optional[int] = None,
    ) -> Tuple[List[float], List[float]]:
        """Binned throughput (seconds, Mbps) for one service."""
        if bin_usec < 1:
            raise ValueError("bin width must be positive")
        bins: Dict[int, int] = {}
        last = 0
        for when, sid, size in self.records:
            if sid != service_id or when < start_usec:
                continue
            if end_usec is not None and when >= end_usec:
                continue
            index = (when - start_usec) // bin_usec
            bins[index] = bins.get(index, 0) + size
            last = max(last, index)
        times = [(i * bin_usec + start_usec) / 1e6 for i in range(last + 1)]
        rates = [bins.get(i, 0) * 8.0 / bin_usec for i in range(last + 1)]
        return times, rates

    def bytes_delivered(
        self,
        service_id: str,
        start_usec: int = 0,
        end_usec: Optional[int] = None,
    ) -> int:
        """Total bytes delivered to ``service_id`` within a window."""
        total = 0
        for when, sid, size in self.records:
            if sid != service_id or when < start_usec:
                continue
            if end_usec is not None and when >= end_usec:
                continue
            total += size
        return total

    def to_json(self) -> Dict:
        """Serialise the trace for artifact publication."""
        return {"records": self.records}
