"""Experiment artifacts: queue logs and per-packet traces.

The Prudentia website publishes "bottleneck queue logs and client PCAPs for
every experiment"; these classes are the in-simulator equivalents.  Both
store their records **columnar** - parallel ``array('q')`` buffers plus an
interned service-id table - so the per-packet hot path appends machine
integers instead of allocating a Python tuple per record.  Rows are only
materialised when something asks for them (``to_json()``, the ``records``
property, the series helpers), which is once per trial rather than once
per packet.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple


class QueueLog:
    """Sampled bottleneck-queue occupancy plus drop events.

    Occupancy is sampled on a fixed period (default 10 ms) by the link's
    serialiser loop; this keeps the log size bounded regardless of packet
    rate while still resolving the burst/drain dynamics shown in Fig 8.
    """

    __slots__ = (
        "sample_period_usec",
        "drop_events",
        "_sample_times",
        "_sample_occs",
        "_next_sample_usec",
    )

    def __init__(self, sample_period_usec: int = 10_000) -> None:
        if sample_period_usec < 1:
            raise ValueError("sample period must be positive")
        self.sample_period_usec = sample_period_usec
        self._sample_times = array("q")
        self._sample_occs = array("q")
        self.drop_events: List[Tuple[int, str]] = []
        self._next_sample_usec = 0

    @property
    def samples(self) -> List[Tuple[int, int]]:
        """Materialised ``(time_usec, occupancy)`` rows, oldest first."""
        return list(zip(self._sample_times, self._sample_occs))

    def maybe_sample(self, now: int, occupancy: int) -> None:
        """Record occupancy if the sampling period has elapsed.

        The next sample time is aligned to the fixed period grid
        (``0, P, 2P, ...``) rather than ``now + P``: anchoring on ``now``
        let the grid slide forward by one inter-arrival gap per sample
        under bursty arrivals, so a nominal 10 ms log drifted measurably
        over a long trial.
        """
        if now >= self._next_sample_usec:
            self._sample_times.append(now)
            self._sample_occs.append(occupancy)
            period = self.sample_period_usec
            self._next_sample_usec = (now // period + 1) * period

    def record_drop(self, now: int, service_id: str) -> None:
        """Log one tail-drop event."""
        self.drop_events.append((now, service_id))

    def occupancy_series(self) -> Tuple[List[int], List[int]]:
        """(times_usec, occupancy) columns for plotting."""
        return list(self._sample_times), list(self._sample_occs)

    def to_json(self) -> Dict:
        """Serialise the log for artifact publication."""
        return {
            "sample_period_usec": self.sample_period_usec,
            "samples": self.samples,
            "drop_events": self.drop_events,
        }


class PacketTrace:
    """Per-packet delivery records for one experiment ("client PCAP").

    Recording every packet is expensive, so traces are opt-in (enabled for
    the time-series figures and for artifact publication, disabled for bulk
    heatmap sweeps).  Each logical record is
    ``(deliver_time_usec, service_id, size_bytes)``, stored as three
    parallel columns with service ids interned to small integers.

    ``throughput_series``/``bytes_delivered`` consult a lazily built
    per-service index (row positions per service id) instead of rescanning
    every record on each call; the index is invalidated by new records and
    rebuilt in one pass.
    """

    __slots__ = ("enabled", "_times", "_sizes", "_codes", "_sids", "_code_of", "_index")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._times = array("q")
        self._sizes = array("q")
        self._codes = array("q")
        self._sids: List[str] = []  # code -> service_id
        self._code_of: Dict[str, int] = {}
        # service_id -> (times array, sizes array); None when stale.
        self._index: Optional[Dict[str, Tuple[array, array]]] = None

    def __len__(self) -> int:
        return len(self._times)

    @property
    def records(self) -> List[Tuple[int, str, int]]:
        """Materialised ``(time, service_id, size)`` rows, oldest first."""
        sids = self._sids
        return [
            (when, sids[code], size)
            for when, code, size in zip(self._times, self._codes, self._sizes)
        ]

    def record(self, now: int, service_id: str, size_bytes: int) -> None:
        """Record one delivered packet (no-op when disabled)."""
        if not self.enabled:
            return
        code = self._code_of.get(service_id)
        if code is None:
            code = self._code_of[service_id] = len(self._sids)
            self._sids.append(service_id)
        self._times.append(now)
        self._codes.append(code)
        self._sizes.append(size_bytes)
        self._index = None

    def _service_columns(self, service_id: str) -> Tuple[array, array]:
        """(times, sizes) columns for one service, via the lazy index."""
        index = self._index
        if index is None:
            index = {}
            sids = self._sids
            for when, code, size in zip(self._times, self._codes, self._sizes):
                columns = index.get(sids[code])
                if columns is None:
                    columns = index[sids[code]] = (array("q"), array("q"))
                columns[0].append(when)
                columns[1].append(size)
            self._index = index
        return index.get(service_id, (array("q"), array("q")))

    def throughput_series(
        self,
        service_id: str,
        bin_usec: int = 1_000_000,
        start_usec: int = 0,
        end_usec: Optional[int] = None,
    ) -> Tuple[List[float], List[float]]:
        """Binned throughput (seconds, Mbps) for one service.

        Returns empty series when no record matches the service/window
        (historically this produced one spurious zero-valued bin).
        """
        if bin_usec < 1:
            raise ValueError("bin width must be positive")
        times, sizes = self._service_columns(service_id)
        bins: Dict[int, int] = {}
        last = 0
        for when, size in zip(times, sizes):
            if when < start_usec:
                continue
            if end_usec is not None and when >= end_usec:
                continue
            index = (when - start_usec) // bin_usec
            bins[index] = bins.get(index, 0) + size
            last = max(last, index)
        if not bins:
            return [], []
        out_times = [(i * bin_usec + start_usec) / 1e6 for i in range(last + 1)]
        rates = [bins.get(i, 0) * 8.0 / bin_usec for i in range(last + 1)]
        return out_times, rates

    def bytes_delivered(
        self,
        service_id: str,
        start_usec: int = 0,
        end_usec: Optional[int] = None,
    ) -> int:
        """Total bytes delivered to ``service_id`` within a window."""
        times, sizes = self._service_columns(service_id)
        total = 0
        for when, size in zip(times, sizes):
            if when < start_usec:
                continue
            if end_usec is not None and when >= end_usec:
                continue
            total += size
        return total

    def to_json(self) -> Dict:
        """Serialise the trace for artifact publication."""
        return {"records": self.records}
