"""The shared bottleneck link: drop-tail queue plus serialiser.

Packets arriving from any server enter the drop-tail queue; a single
serialiser drains the queue at the configured link rate, then hands each
packet to its flow's receiver after the downstream propagation delay.

Hot-path note (see DESIGN.md, "simulator hot path"): the serialiser keeps
exactly one pending event in the engine heap - the finish time of the
packet currently on the wire - and each ``_finish`` both delivers its
packet and starts the next serialisation in the same callback frame.
Successive dequeue times within a busy burst are pure integer arithmetic
over a per-size serialisation-time cache; no closures, floats, or repeated
rate conversions per packet.  Events carry the packet as the engine's
4-tuple ``arg`` so nothing is allocated per event.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from .. import units
from ..obs.flight import FLIGHT_NEVER
from .engine import Engine
from .packet import Packet
from .queue import DropTailQueue
from .trace import PacketTrace


class BottleneckLink:
    """Rate-limited link with an attached drop-tail FIFO.

    Attributes:
        rate_bps: serialisation rate.
        post_delay_usec: propagation delay from the switch to the client.
        queue: the attached :class:`DropTailQueue`.
        delivered_bytes: per-service delivered-byte counters (wire bytes,
            including retransmissions) since the last ``reset_stats``.
    """

    __slots__ = (
        "engine",
        "rate_bps",
        "post_delay_usec",
        "queue",
        "trace",
        "delivered_bytes",
        "busy_usec",
        "flight",
        "earlystop",
        "_busy",
        "_last_busy_start",
        "_ser_usec",
        "_flight_next",
        "_earlystop_next",
    )

    def __init__(
        self,
        engine: Engine,
        rate_bps: float,
        queue: DropTailQueue,
        post_delay_usec: int = 0,
        trace: Optional[PacketTrace] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.engine = engine
        self.rate_bps = rate_bps
        self.post_delay_usec = post_delay_usec
        self.queue = queue
        self.trace = trace
        self.delivered_bytes: Dict[str, int] = defaultdict(int)
        self.busy_usec = 0
        self._busy = False
        self._last_busy_start = 0
        # Flight-recorder gate (see repro.obs.flight): armed by
        # FlightRecorder.attach; the sentinel keeps the disabled send
        # path to one integer compare.
        self.flight = None
        self._flight_next = FLIGHT_NEVER
        # Early-stop gate (see repro.core.earlystop): same shape as the
        # flight gate - armed by EarlyStopMonitor.attach, one integer
        # compare when disabled, zero events either way.
        self.earlystop = None
        self._earlystop_next = FLIGHT_NEVER
        # size_bytes -> serialisation time in usec.  One or two packet
        # sizes dominate any trial, so this is effectively a constant fold
        # of ``units.serialization_time_usec`` for the drain loop.
        self._ser_usec: Dict[int, int] = {}

    def serialization_usec(self, size_bytes: int) -> int:
        """Cached integer serialisation time for a packet of this size."""
        ser = self._ser_usec.get(size_bytes)
        if ser is None:
            ser = self._ser_usec[size_bytes] = units.serialization_time_usec(
                size_bytes, self.rate_bps
            )
        return ser

    def send(self, packet: Packet) -> None:
        """Packet arrives at the switch; queue it and kick the serialiser."""
        now = self.engine.now
        queue = self.queue
        accepted = queue.offer(packet, now)
        log = queue.log
        if log is not None:
            log.maybe_sample(now, len(queue))
        if now >= self._flight_next:
            self._flight_next = self.flight.sample_queue(now, self)
        if now >= self._earlystop_next:
            self._earlystop_next = self.earlystop.checkpoint(now, self)
        if not accepted:
            packet.flow.on_packet_dropped(packet)
            return
        if not self._busy:
            self._busy = True
            self._last_busy_start = now
            self._serialize_next()

    def _serialize_next(self) -> None:
        """Start serialising the queue head (or go idle)."""
        now = self.engine.now
        packet = self.queue.pop(now)
        if packet is None:
            self._busy = False
            self.busy_usec += now - self._last_busy_start
            return
        ser = self._ser_usec.get(packet.size_bytes)
        if ser is None:
            ser = self.serialization_usec(packet.size_bytes)
        self.engine.schedule(ser, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        """Packet fully serialised: deliver it and drain the next one.

        This *is* the burst drain loop: while the queue stays non-empty
        each ``_finish`` immediately computes the next integer dequeue
        time and schedules the next finish, so a busy burst is a chain of
        single pre-resolved events with exact per-packet timestamps for
        the queue-delay accounting.
        """
        engine = self.engine
        now = engine.now
        flow = packet.flow
        service_id = flow.service_id
        size = packet.size_bytes
        self.delivered_bytes[service_id] += size
        post = self.post_delay_usec
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.record(now + post, service_id, size)
        if post:
            engine.schedule(post, flow.on_packet_arrived, packet)
        else:
            flow.on_packet_arrived(packet)
        # Drain the next packet in the same frame (dequeue time == now).
        nxt = self.queue.pop(now)
        if nxt is None:
            self._busy = False
            self.busy_usec += now - self._last_busy_start
            return
        ser = self._ser_usec.get(nxt.size_bytes)
        if ser is None:
            ser = self.serialization_usec(nxt.size_bytes)
        engine.schedule(ser, self._finish, nxt)

    def utilization(self, window_usec: int) -> float:
        """Fraction of ``window_usec`` worth of capacity actually delivered."""
        if window_usec <= 0:
            raise ValueError("window must be positive")
        total_bytes = sum(self.delivered_bytes.values())
        capacity_bytes = self.rate_bps * window_usec / units.USEC_PER_SEC / 8
        return total_bytes / capacity_bytes if capacity_bytes else 0.0

    def reset_stats(self) -> None:
        """Clear delivery counters (when the measurement window opens)."""
        self.delivered_bytes.clear()
        self.queue.reset_stats()
        self.busy_usec = 0
        if self._busy:
            self._last_busy_start = self.engine.now
