"""The shared bottleneck link: drop-tail queue plus serialiser.

Packets arriving from any server enter the drop-tail queue; a single
serialiser drains the queue at the configured link rate, then hands each
packet to its flow's receiver after the downstream propagation delay.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import units
from .engine import Engine
from .packet import Packet
from .queue import DropTailQueue
from .trace import PacketTrace


class BottleneckLink:
    """Rate-limited link with an attached drop-tail FIFO.

    Attributes:
        rate_bps: serialisation rate.
        post_delay_usec: propagation delay from the switch to the client.
        queue: the attached :class:`DropTailQueue`.
        delivered_bytes: per-service delivered-byte counters (wire bytes,
            including retransmissions) since the last ``reset_stats``.
    """

    __slots__ = (
        "engine",
        "rate_bps",
        "post_delay_usec",
        "queue",
        "trace",
        "delivered_bytes",
        "busy_usec",
        "_busy",
        "_last_busy_start",
    )

    def __init__(
        self,
        engine: Engine,
        rate_bps: float,
        queue: DropTailQueue,
        post_delay_usec: int = 0,
        trace: Optional[PacketTrace] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.engine = engine
        self.rate_bps = rate_bps
        self.post_delay_usec = post_delay_usec
        self.queue = queue
        self.trace = trace
        self.delivered_bytes: Dict[str, int] = {}
        self.busy_usec = 0
        self._busy = False
        self._last_busy_start = 0

    def send(self, packet: Packet) -> None:
        """Packet arrives at the switch; queue it and kick the serialiser."""
        now = self.engine.now
        accepted = self.queue.offer(packet, now)
        log = self.queue.log
        if log is not None:
            log.maybe_sample(now, self.queue.occupancy)
        if not accepted:
            packet.flow.on_packet_dropped(packet)
            return
        if not self._busy:
            self._busy = True
            self._last_busy_start = now
            self._serialize_next()

    def _serialize_next(self) -> None:
        packet = self.queue.pop(self.engine.now)
        if packet is None:
            self._busy = False
            self.busy_usec += self.engine.now - self._last_busy_start
            return
        ser = units.serialization_time_usec(packet.size_bytes, self.rate_bps)
        self.engine.schedule(ser, lambda p=packet: self._finish(p))

    def _finish(self, packet: Packet) -> None:
        service_id = packet.flow.service_id
        self.delivered_bytes[service_id] = (
            self.delivered_bytes.get(service_id, 0) + packet.size_bytes
        )
        if self.trace is not None:
            self.trace.record(
                self.engine.now + self.post_delay_usec,
                service_id,
                packet.size_bytes,
            )
        if self.post_delay_usec:
            self.engine.schedule(
                self.post_delay_usec,
                lambda p=packet: p.flow.on_packet_arrived(p),
            )
        else:
            packet.flow.on_packet_arrived(packet)
        self._serialize_next()

    def utilization(self, window_usec: int) -> float:
        """Fraction of ``window_usec`` worth of capacity actually delivered."""
        if window_usec <= 0:
            raise ValueError("window must be positive")
        total_bytes = sum(self.delivered_bytes.values())
        capacity_bytes = self.rate_bps * window_usec / units.USEC_PER_SEC / 8
        return total_bytes / capacity_bytes if capacity_bytes else 0.0

    def reset_stats(self) -> None:
        """Clear delivery counters (when the measurement window opens)."""
        self.delivered_bytes.clear()
        self.queue.reset_stats()
        self.busy_usec = 0
        if self._busy:
            self._last_busy_start = self.engine.now
